//! `tickLib`, watchdog timers, and timestamp-counter rollover management.
//!
//! The watchdog expiry path mirrors real VxWorks: expiry routines run at
//! interrupt level and may therefore only perform ISR-safe actions —
//! modelled by the closed [`IsrAction`] enum (give a semaphore, send a
//! message without waiting, or restart the dog). General callbacks are
//! deliberately impossible, same as the real restriction.
//!
//! [`TimestampManager`] is the extension the paper lists explicitly
//! ("timestamp counter rollover management"): the i960's free-running
//! 32-bit cycle counter at 66 MHz wraps every ~65 s, so microbenchmarks
//! longer than that need software epoch extension. The manager requires
//! only that consecutive reads are less than one wrap apart.

use crate::sync::{QId, SemId};

/// Watchdog identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WatchdogId(pub u32);

/// ISR-safe actions a watchdog expiry routine may take.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IsrAction {
    /// `semGive` from interrupt level.
    SemGive(SemId),
    /// `msgQSend(NO_WAIT)` from interrupt level.
    MsgSend(QId, u64),
    /// No-op (cancelled dog that fired anyway — counted, ignored).
    None,
}

/// One armed watchdog.
#[derive(Clone, Copy, Debug)]
pub struct Watchdog {
    /// Tick at which to fire; `None` = disarmed.
    pub fire_at: Option<u64>,
    /// Action on expiry.
    pub action: IsrAction,
    /// Auto-restart period in ticks (periodic dogs), if any.
    pub period: Option<u64>,
}

impl Watchdog {
    /// A disarmed watchdog.
    pub fn disarmed() -> Watchdog {
        Watchdog {
            fire_at: None,
            action: IsrAction::None,
            period: None,
        }
    }
}

/// Software extension of a wrapping 32-bit cycle counter to 64 bits.
///
/// Correct as long as reads are spaced closer than one wrap period
/// (2³² cycles ≈ 65 s at 66 MHz) — the kernel tick handler reads it every
/// tick, which guarantees that.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimestampManager {
    last_raw: u32,
    epochs: u64,
}

impl TimestampManager {
    /// Fresh manager; the first raw read establishes the base.
    pub fn new() -> TimestampManager {
        TimestampManager::default()
    }

    /// Extend a raw 32-bit counter read to 64 bits, accounting for wraps
    /// since the previous read.
    pub fn extend(&mut self, raw: u32) -> u64 {
        if raw < self.last_raw {
            self.epochs += 1;
        }
        self.last_raw = raw;
        (self.epochs << 32) | u64::from(raw)
    }

    /// Number of rollovers observed.
    pub fn rollovers(&self) -> u64 {
        self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extends_across_single_rollover() {
        let mut ts = TimestampManager::new();
        assert_eq!(ts.extend(100), 100);
        assert_eq!(ts.extend(u32::MAX), u64::from(u32::MAX));
        // Wrap: raw goes backwards.
        assert_eq!(ts.extend(50), (1u64 << 32) + 50);
        assert_eq!(ts.rollovers(), 1);
    }

    #[test]
    fn extends_across_many_rollovers() {
        let mut ts = TimestampManager::new();
        let mut prev = 0u64;
        let mut raw = 0u32;
        for _ in 0..1000 {
            raw = raw.wrapping_add(0x4000_0000); // quarter wrap per read
            let ext = ts.extend(raw);
            assert!(ext > prev, "extended time must be monotone");
            prev = ext;
        }
        assert_eq!(ts.rollovers(), 250, "quarter-wrap steps wrap every 4 reads");
    }

    #[test]
    fn monotone_without_wraps() {
        let mut ts = TimestampManager::new();
        for raw in [0u32, 10, 20, 1_000_000, u32::MAX - 1] {
            assert_eq!(ts.extend(raw), u64::from(raw));
        }
        assert_eq!(ts.rollovers(), 0);
    }

    #[test]
    fn watchdog_default_disarmed() {
        let wd = Watchdog::disarmed();
        assert!(wd.fire_at.is_none());
        assert_eq!(wd.action, IsrAction::None);
    }
}
