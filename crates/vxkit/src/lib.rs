//! # vxkit — a VxWorks-like embedded RTOS model
//!
//! The paper's NI firmware runs on *"an embedded system configuration of the
//! VxWorks real-time operating system offering support for memory
//! management, task creation, deletion, and scheduling, and device access"*,
//! extended by the authors with a *"fixed-point library …, driver
//! front-ends …, timestamp counter rollover management, circular queues and
//! heaps"* (§2). The host-side comparison hinges on the NI kernel running
//! *"few system tasks (threads) scheduled by the native `wind`
//! scheduler"* so the DWCS task receives CPU at low variability (§4.2.3).
//!
//! This crate models that kernel faithfully enough to reproduce those
//! effects, deterministic and embeddable in the discrete-event simulation:
//!
//! * [`kernel::Kernel`] — a *wind*-style scheduler: 256 priority levels
//!   (0 highest), strict priority preemption, optional round-robin time
//!   slicing among equal priorities, context-switch accounting.
//! * [`task`] — tasks as resumable state machines ([`task::TaskBody`]):
//!   each step reports cycles consumed and the blocking action taken, so
//!   the embedding (`hwsim` CPU models) can convert execution into
//!   simulated time exactly.
//! * [`sync`] — binary/counting/mutex semaphores (priority-ordered wait
//!   queues, optional priority inheritance on mutexes) and bounded message
//!   queues, VxWorks `semLib`/`msgQLib` style.
//! * [`timer`] — `tickLib` (tick counter + delayed tasks + watchdog
//!   timers whose expiry routines are restricted to ISR-safe actions, as on
//!   real VxWorks) and the **timestamp counter rollover manager** the paper
//!   calls out: a 32-bit cycle counter at CPU frequency wraps in about a
//!   minute at 66 MHz; [`timer::TimestampManager`] extends it to 64 bits.
//!
//! The kernel executes no real machine code — task bodies are Rust closures
//! over model state — but its *scheduling decisions* (who runs, when, what
//! blocks, what a context switch costs) are the real thing, which is what
//! the paper's load-immunity argument rests on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
pub mod sync;
pub mod task;
pub mod timer;

pub use kernel::{Kernel, KernelConfig, KernelEvent};
pub use sync::{MsgQueue, QId, SemId, Semaphore};
pub use task::{BlockOn, StepResult, TaskBody, TaskId, TaskState};
pub use timer::{IsrAction, TimestampManager, WatchdogId};
