//! FIFO-granted exclusive resources.
//!
//! PCI bus ownership, a disk head, a CPU — anything one user holds at a time
//! while others queue. A [`Resource`] lives *inside* the world struct; a
//! waiter enqueues a continuation closure which the resource schedules on
//! the engine the moment the grant happens, so the continuation runs with
//! full `&mut World` access like any other event.
//!
//! Busy time and queue statistics are tracked so models can report
//! utilization and queuing delay without extra plumbing.

use crate::engine::{Engine, EventFn};
use crate::stats::Summary;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// An exclusive, FIFO-granted resource. `W` is the world type of the engine
/// it is used with.
pub struct Resource<W> {
    name: &'static str,
    busy: bool,
    waiters: VecDeque<(SimTime, EventFn<W>)>,
    busy_since: SimTime,
    total_busy: SimDuration,
    grants: u64,
    wait_stats: Summary,
    max_queue: usize,
}

impl<W: 'static> Resource<W> {
    /// Create a named resource (name appears in diagnostics).
    pub fn new(name: &'static str) -> Resource<W> {
        Resource {
            name,
            busy: false,
            waiters: VecDeque::new(),
            busy_since: SimTime::ZERO,
            total_busy: SimDuration::ZERO,
            grants: 0,
            wait_stats: Summary::new(),
            max_queue: 0,
        }
    }

    /// Resource name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether currently held.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Current queue depth.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// Deepest queue observed.
    pub fn max_queue(&self) -> usize {
        self.max_queue
    }

    /// Number of grants so far.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Cumulative busy time (through the last release).
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Distribution of time spent waiting for a grant (ms).
    pub fn wait_stats(&self) -> &Summary {
        &self.wait_stats
    }

    /// Request the resource. If free, `cont` is scheduled immediately (same
    /// instant, after already-queued events); otherwise it queues FIFO and is
    /// scheduled when released. The holder **must** call
    /// [`Resource::release`] when done.
    pub fn acquire(&mut self, eng: &mut Engine<W>, cont: impl FnOnce(&mut W, &mut Engine<W>) + 'static) {
        if self.busy {
            self.waiters.push_back((eng.now(), Box::new(cont)));
            self.max_queue = self.max_queue.max(self.waiters.len());
        } else {
            self.busy = true;
            self.busy_since = eng.now();
            self.grants += 1;
            self.wait_stats.add(0.0);
            eng.schedule_now(cont);
        }
    }

    /// Release the resource, granting the next FIFO waiter if any.
    ///
    /// Panics in debug builds if released while free (double release is a
    /// model bug worth failing loudly on).
    pub fn release(&mut self, eng: &mut Engine<W>) {
        debug_assert!(self.busy, "release of free resource `{}`", self.name);
        self.total_busy += eng.now().since(self.busy_since);
        if let Some((enq_at, cont)) = self.waiters.pop_front() {
            // Hand over directly: stays busy, next holder starts now.
            self.busy_since = eng.now();
            self.grants += 1;
            self.wait_stats.add(eng.now().since(enq_at).as_millis_f64());
            eng.schedule_now(cont);
        } else {
            self.busy = false;
        }
    }

    /// Utilization in `[0, 1]` over the interval `[0, now]` (through the
    /// last release; an open holding interval is not counted).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.total_busy.as_nanos() as f64 / now.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct World {
        bus: Option<Resource<World>>,
        order: Vec<&'static str>,
    }

    fn world() -> World {
        World {
            bus: Some(Resource::new("bus")),
            order: Vec::new(),
        }
    }

    /// Take the resource out of the world, call f, put it back. Mirrors how
    /// hardware models structure their fields to satisfy the borrow checker.
    fn with_bus(w: &mut World, f: impl FnOnce(&mut Resource<World>)) {
        let mut bus = w.bus.take().expect("bus present");
        f(&mut bus);
        w.bus = Some(bus);
    }

    #[test]
    fn immediate_grant_when_free() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = world();
        with_bus(&mut w, |bus| {
            bus.acquire(&mut eng, |w, _| w.order.push("granted"));
        });
        eng.run(&mut w);
        assert_eq!(w.order, vec!["granted"]);
        assert!(w.bus.as_ref().unwrap().is_busy());
    }

    #[test]
    fn fifo_handover_on_release() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = world();
        with_bus(&mut w, |bus| {
            bus.acquire(&mut eng, |w: &mut World, eng| {
                w.order.push("first");
                // Hold for 10 ns then release.
                eng.schedule_in(SimDuration::from_nanos(10), |w: &mut World, eng| {
                    with_bus(w, |bus| bus.release(eng));
                });
            });
            bus.acquire(&mut eng, |w: &mut World, _| w.order.push("second"));
            bus.acquire(&mut eng, |w: &mut World, _| w.order.push("third"));
        });
        eng.run_steps(&mut w, 1); // grant of "first"
        assert_eq!(w.order, vec!["first"]);
        with_bus(&mut w, |bus| assert_eq!(bus.queue_len(), 2));
        eng.run_steps(&mut w, 2); // timed release event + grant of "second"
        assert_eq!(w.order, vec!["first", "second"]);
        with_bus(&mut w, |bus| {
            assert!(bus.is_busy());
            bus.release(&mut eng); // manually release second → grants third
        });
        eng.run(&mut w);
        assert_eq!(w.order, vec!["first", "second", "third"]);
    }

    #[test]
    fn busy_time_accounting() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = world();
        with_bus(&mut w, |bus| {
            bus.acquire(&mut eng, |w: &mut World, eng| {
                eng.schedule_in(SimDuration::from_nanos(100), |w: &mut World, eng| {
                    with_bus(w, |bus| bus.release(eng));
                });
                w.order.push("holder");
            });
        });
        eng.run(&mut w);
        let bus = w.bus.as_ref().unwrap();
        assert_eq!(bus.total_busy().as_nanos(), 100);
        assert_eq!(bus.grants(), 1);
        assert!(!bus.is_busy());
        assert!((bus.utilization(SimTime::from_nanos(200)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn queue_depth_tracked() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = world();
        with_bus(&mut w, |bus| {
            bus.acquire(&mut eng, |_, _| {});
            for _ in 0..5 {
                bus.acquire(&mut eng, |_, _| {});
            }
            assert_eq!(bus.queue_len(), 5);
            assert_eq!(bus.max_queue(), 5);
        });
    }
}
