//! # simkit — a deterministic discrete-event simulation kernel
//!
//! The paper's evaluation ran on hardware that no longer exists (Intel i960RD
//! I2O network interfaces in a Quad Pentium Pro Solaris x86 host). Every
//! experiment in this repository therefore runs on a *calibrated model* of
//! that hardware, and this crate is the kernel those models are built on:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond-resolution virtual clock.
//!   All paper quantities (µs scheduling overheads, ms disk accesses, Mb/s
//!   links) are exactly representable.
//! * [`Engine`] — the event-scheduling executive: a hierarchical timing
//!   wheel of `(time, seq)` entries over a slab arena that recycles event
//!   storage, FIFO-stable among simultaneous events, with O(1) cancellable
//!   timers and an overflow heap for far-future events. The engine is
//!   generic over the *world* type so hardware models compose as plain
//!   Rust structs with no `Rc<RefCell<…>>` plumbing. The original
//!   binary-heap executive survives as [`reference::HeapEngine`], the
//!   differential oracle and benchmark baseline for the wheel.
//! * [`Resource`] — a FIFO-granted exclusive resource (PCI bus arbitration,
//!   disk head, CPU) with built-in busy-time and queue-length accounting.
//! * [`rng`] — a self-contained PCG32 RNG plus the distributions the
//!   workload models need (uniform, exponential, bounded Pareto, normal).
//!   Determinism across runs and platforms is a requirement: every
//!   experiment binary seeds explicitly and reproduces byte-identical
//!   output.
//! * [`stats`] — time-series traces, windowed utilization sampling,
//!   log-binned histograms, and summary reducers used to regenerate the
//!   paper's figures.
//!
//! The kernel is deliberately single-threaded: experiment *sweeps* are
//! parallelised across OS processes/threads by the harness, while each
//! simulated world stays sequential and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod reference;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
mod wheel;

pub use engine::{Engine, EventFn, EventId, FireHook};
pub use reference::{HeapEngine, HeapEventFn, HeapEventId};
pub use resource::Resource;
pub use rng::Pcg32;
pub use stats::{Counter, Histogram, Summary, Trace, UtilizationSampler};
pub use time::{SimDuration, SimTime};
