//! Measurement collectors used to regenerate the paper's tables and figures.
//!
//! * [`Trace`] — a `(time, value)` series (Figures 6–10 are all traces:
//!   CPU utilization vs time, bandwidth vs time, queuing delay vs frame#).
//! * [`UtilizationSampler`] — converts busy/idle intervals into windowed
//!   percent-utilization samples, the way Solaris Perfmeter presented CPU
//!   load in Figure 6.
//! * [`Histogram`] — log₂-binned latency histogram for microbenchmarks.
//! * [`Summary`] — streaming mean/min/max/stddev (Welford).
//! * [`Counter`] — a named monotonically increasing count.

use crate::time::{SimDuration, SimTime};
use std::fmt::Write as _;

/// A time series of `f64` samples.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    points: Vec<(SimTime, f64)>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Append a sample. Samples are expected in nondecreasing time order
    /// (the engine fires events in order, so this holds naturally).
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(self.points.last().is_none_or(|&(lt, _)| lt <= t));
        self.points.push((t, v));
    }

    /// All points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Mean of values between `from` and `to` (unweighted by spacing —
    /// matches a periodic sampler).
    pub fn mean_between(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in &self.points {
            if t >= from && t <= to {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Minimum and maximum values over the whole trace.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        self.points.iter().fold(None, |acc, &(_, v)| match acc {
            None => Some((v, v)),
            Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
        })
    }

    /// The value toward which the series settles: mean of the final
    /// `tail_fraction` of samples (the paper reports "settling bandwidth").
    pub fn settling_value(&self, tail_fraction: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let start = ((self.points.len() as f64) * (1.0 - tail_fraction)).floor() as usize;
        let tail = &self.points[start.min(self.points.len() - 1)..];
        Some(tail.iter().map(|&(_, v)| v).sum::<f64>() / tail.len() as f64)
    }

    /// Render as CSV with the given value-column header.
    pub fn to_csv(&self, header: &str) -> String {
        let mut out = String::with_capacity(self.points.len() * 24 + 16);
        let _ = writeln!(out, "time_ms,{header}");
        for &(t, v) in &self.points {
            let _ = writeln!(out, "{},{v:.3}", t.as_millis());
        }
        out
    }

    /// Downsample to at most `n` points, keeping endpoints (plotting aid).
    pub fn thin(&self, n: usize) -> Trace {
        if n == 0 || self.points.len() <= n {
            return self.clone();
        }
        let stride = self.points.len().div_ceil(n);
        let mut points: Vec<(SimTime, f64)> = self.points.iter().copied().step_by(stride).collect();
        if points.last() != self.points.last() {
            points.push(*self.points.last().expect("non-empty"));
        }
        Trace { points }
    }
}

/// Converts busy intervals into a windowed percent-utilization series.
pub struct UtilizationSampler {
    window: SimDuration,
    window_start: SimTime,
    busy_in_window: SimDuration,
    busy_since: Option<SimTime>,
    trace: Trace,
}

impl UtilizationSampler {
    /// Sampler with the given averaging window (Perfmeter-style).
    pub fn new(window: SimDuration) -> UtilizationSampler {
        UtilizationSampler {
            window,
            window_start: SimTime::ZERO,
            busy_in_window: SimDuration::ZERO,
            busy_since: None,
            trace: Trace::new(),
        }
    }

    /// Mark the resource busy from `t` (idempotent).
    pub fn busy(&mut self, t: SimTime) {
        self.roll(t);
        if self.busy_since.is_none() {
            self.busy_since = Some(t);
        }
    }

    /// Mark the resource idle from `t` (idempotent).
    pub fn idle(&mut self, t: SimTime) {
        self.roll(t);
        if let Some(since) = self.busy_since.take() {
            self.busy_in_window += t.since(since);
        }
    }

    /// Advance window bookkeeping to `t`, emitting one sample per complete
    /// window.
    fn roll(&mut self, t: SimTime) {
        while t.since(self.window_start) >= self.window {
            let window_end = self.window_start + self.window;
            // Busy time inside this window from any open busy interval.
            let mut busy = self.busy_in_window;
            if let Some(since) = self.busy_since {
                busy += window_end.since(since.max(self.window_start));
                // The open interval has now been credited through window_end;
                // restart it there so later windows don't double-count.
                self.busy_since = Some(window_end);
            }
            let pct = 100.0 * busy.as_nanos() as f64 / self.window.as_nanos() as f64;
            self.trace.push(window_end, pct.min(100.0));
            self.window_start = window_end;
            self.busy_in_window = SimDuration::ZERO;
        }
    }

    /// Close out at `t` and return the utilization trace.
    pub fn finish(mut self, t: SimTime) -> Trace {
        self.idle(t);
        self.trace
    }

    /// Peek at samples emitted so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

/// Log₂-binned histogram of durations.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// bins[i] counts samples in [2^i, 2^(i+1)) nanoseconds; bins[0] also
    /// holds 0–1 ns.
    bins: [u64; 64],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            bins: [0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let bin = if ns <= 1 { 0 } else { 63 - ns.leading_zeros() as usize };
        self.bins[bin] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean duration.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_ns / u128::from(self.count)) as u64)
    }

    /// Largest recorded duration.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(if self.count == 0 { 0 } else { self.max_ns })
    }

    /// Smallest recorded duration.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_nanos(if self.count == 0 { 0 } else { self.min_ns })
    }

    /// Approximate quantile from the binned data (upper bin edge).
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return SimDuration::from_nanos(1u64 << (i + 1).min(63));
            }
        }
        self.max()
    }
}

/// Streaming summary statistics (Welford's online algorithm).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Summary {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add a sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Minimum (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A named monotone counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(u64);

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Increment by one.
    pub fn bump(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn trace_basics() {
        let mut tr = Trace::new();
        tr.push(t(0), 1.0);
        tr.push(t(10), 3.0);
        tr.push(t(20), 5.0);
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.last(), Some(5.0));
        assert_eq!(tr.mean_between(t(0), t(10)), Some(2.0));
        assert_eq!(tr.min_max(), Some((1.0, 5.0)));
    }

    #[test]
    fn settling_value_uses_tail() {
        let mut tr = Trace::new();
        for i in 0..100u64 {
            let v = if i < 50 { 0.0 } else { 250_000.0 };
            tr.push(t(i), v);
        }
        let settle = tr.settling_value(0.25).unwrap();
        assert_eq!(settle, 250_000.0);
    }

    #[test]
    fn csv_render() {
        let mut tr = Trace::new();
        tr.push(t(1), 2.5);
        let csv = tr.to_csv("bw_bps");
        assert!(csv.starts_with("time_ms,bw_bps\n"));
        assert!(csv.contains("1,2.500"));
    }

    #[test]
    fn thin_preserves_endpoints() {
        let mut tr = Trace::new();
        for i in 0..1000u64 {
            tr.push(t(i), i as f64);
        }
        let thinned = tr.thin(10);
        assert!(thinned.len() <= 12);
        assert_eq!(thinned.points().first(), Some(&(t(0), 0.0)));
        assert_eq!(thinned.points().last(), Some(&(t(999), 999.0)));
    }

    #[test]
    fn utilization_half_busy() {
        let mut u = UtilizationSampler::new(SimDuration::from_millis(10));
        // Busy 5 ms of every 10 ms window.
        for w in 0..4u64 {
            u.busy(t(w * 10));
            u.idle(t(w * 10 + 5));
        }
        let trace = u.finish(t(40));
        assert_eq!(trace.len(), 4);
        for &(_, pct) in trace.points() {
            assert!((pct - 50.0).abs() < 1e-9, "pct {pct}");
        }
    }

    #[test]
    fn utilization_spanning_windows() {
        let mut u = UtilizationSampler::new(SimDuration::from_millis(10));
        u.busy(t(5));
        u.idle(t(25)); // busy 5–25 ms: windows 50%, 100%, then idle
        let trace = u.finish(t(30));
        let vals: Vec<f64> = trace.points().iter().map(|&(_, v)| v).collect();
        assert_eq!(vals.len(), 3);
        assert!((vals[0] - 50.0).abs() < 1e-9);
        assert!((vals[1] - 100.0).abs() < 1e-9);
        assert!((vals[2] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_and_moments() {
        let mut h = Histogram::new();
        for us in [10u64, 20, 30, 40, 1000] {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean().as_micros(), 220);
        assert_eq!(h.max().as_micros(), 1000);
        assert_eq!(h.min().as_micros(), 10);
        assert!(h.quantile(0.5).as_micros() >= 20);
        assert!(h.quantile(1.0) >= h.quantile(0.5));
    }

    #[test]
    fn summary_welford() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.bump();
        c.add(4);
        assert_eq!(c.get(), 5);
    }
}
