//! Deterministic random numbers for the workload models.
//!
//! A self-contained PCG32 keeps every experiment byte-reproducible across
//! platforms and crate upgrades (an external RNG crate changing its stream
//! between versions would silently change "measured" figures). The
//! distributions are exactly the ones the web/media workload generators
//! need: uniform, exponential (Poisson arrivals), bounded Pareto (web file
//! sizes), and normal (timing noise).

/// PCG-XSH-RR 64/32 (O'Neill 2014). Small, fast, statistically solid.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Seed with a seed value and stream id. Different streams are
    /// independent; experiments use one stream per model component.
    pub fn new(seed: u64, stream: u64) -> Pcg32 {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Convenience: stream 0.
    pub fn seeded(seed: u64) -> Pcg32 {
        Pcg32::new(seed, 0)
    }

    /// Next raw 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next raw 64-bit output (two draws).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift with rejection
    /// (unbiased).
    pub fn below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        let mut x = self.next_u32();
        let mut m = u64::from(x) * u64::from(bound);
        let mut lo = m as u32;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u32();
                m = u64::from(x) * u64::from(bound);
                lo = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Uniform in `[lo, hi]` inclusive.
    pub fn range_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]` (safe for `ln`).
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Exponential with the given mean (inter-arrival times).
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        -mean * self.f64_open().ln()
    }

    /// Bounded Pareto on `[lo, hi]` with shape `alpha` — the standard heavy
    /// tail for web object sizes (httperf-style load realism).
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        debug_assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
        let u = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
        x.clamp(lo, hi)
    }

    /// Normal via Box–Muller (timing noise around mean costs).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.f64_open();
        let u2 = self.f64();
        mean + std_dev * (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg32::new(42, 7);
        let mut b = Pcg32::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Pcg32::seeded(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = Pcg32::seeded(2);
        for _ in 0..1_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            let w = rng.f64_open();
            assert!(w > 0.0 && w <= 1.0);
        }
    }

    #[test]
    fn exp_mean_is_close() {
        let mut rng = Pcg32::seeded(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn pareto_respects_bounds_and_skews_low() {
        let mut rng = Pcg32::seeded(4);
        let mut below_mid = 0;
        for _ in 0..5_000 {
            let v = rng.bounded_pareto(1.2, 1_000.0, 1_000_000.0);
            assert!((1_000.0..=1_000_000.0).contains(&v));
            if v < 500_500.0 {
                below_mid += 1;
            }
        }
        assert!(below_mid > 4_500, "heavy tail: mass concentrates near lo ({below_mid})");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Pcg32::seeded(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::seeded(6);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "astronomically unlikely identity");
    }
}
