//! The original binary-heap executive, kept as a **reference
//! implementation**.
//!
//! [`Engine`](crate::Engine) now runs on a hierarchical timing wheel (see
//! [`crate::engine`]); this module preserves the pre-wheel executive —
//! one `BinaryHeap` of `(time, seq, boxed closure)` entries — with two
//! jobs:
//!
//! 1. **Differential oracle.** The wheel's contract is that it fires the
//!    *exact* `(time, seq)` sequence the heap fired. The property test in
//!    `tests/engine_differential.rs` drives both executives with identical
//!    random schedules (same-instant bursts, cancels, `run_until`
//!    boundaries) and asserts the logs match event for event.
//! 2. **Benchmark baseline.** `bench_engine` reports events/sec for both
//!    executives; the published `BENCH_engine.json` speedup is measured
//!    against this implementation, not against a straw man.
//!
//! The one deliberate difference from the historical code: `cancel` here
//! already carries the leak fix (cancelling a fired or unknown id is a
//! true no-op), so `pending()` is exact on both sides of the differential
//! test.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// A scheduled event: a one-shot closure over the world and the engine.
pub type HeapEventFn<W> = Box<dyn FnOnce(&mut W, &mut HeapEngine<W>)>;

/// Identifier of a scheduled event, usable with [`HeapEngine::cancel`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HeapEventId(u64);

struct Entry<W> {
    at: SimTime,
    seq: u64,
    f: HeapEventFn<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, and
        // among equals lowest sequence first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The heap-based discrete-event engine for worlds of type `W`.
///
/// API-compatible with [`Engine`](crate::Engine) minus the fire hook
/// (the differential test observes firings through the world instead).
pub struct HeapEngine<W> {
    now: SimTime,
    heap: BinaryHeap<Entry<W>>,
    seq: u64,
    /// Seqs scheduled and not yet fired (exact-cancel bookkeeping).
    live: BTreeSet<u64>,
    /// Seqs cancelled while live; lazily discarded as they surface.
    cancelled: BTreeSet<u64>,
    fired: u64,
}

impl<W> Default for HeapEngine<W> {
    fn default() -> Self {
        HeapEngine::new()
    }
}

impl<W> HeapEngine<W> {
    /// A fresh engine at t = 0 with an empty calendar.
    pub fn new() -> HeapEngine<W> {
        HeapEngine {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            seq: 0,
            live: BTreeSet::new(),
            cancelled: BTreeSet::new(),
            fired: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far (diagnostics).
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// Schedule `f` at absolute time `at` (clamped to `now`, flagged in
    /// debug builds when in the past).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut HeapEngine<W>) + 'static) -> HeapEventId {
        debug_assert!(at >= self.now, "event scheduled in the past: {at:?} < {:?}", self.now);
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.live.insert(seq);
        self.heap.push(Entry {
            at,
            seq,
            f: Box::new(f),
        });
        HeapEventId(seq)
    }

    /// Schedule `f` after a delay from now.
    pub fn schedule_in(
        &mut self,
        dt: SimDuration,
        f: impl FnOnce(&mut W, &mut HeapEngine<W>) + 'static,
    ) -> HeapEventId {
        self.schedule_at(self.now + dt, f)
    }

    /// Schedule `f` at the current instant, after all already-queued events
    /// for this instant (FIFO ordering by sequence).
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut W, &mut HeapEngine<W>) + 'static) -> HeapEventId {
        self.schedule_at(self.now, f)
    }

    /// Cancel a pending event. A fired or unknown id is a true no-op.
    pub fn cancel(&mut self, id: HeapEventId) {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
        }
    }

    /// Fire the next event, if any. Returns `false` when the calendar is
    /// exhausted.
    pub fn step(&mut self, world: &mut W) -> bool {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now);
            self.live.remove(&entry.seq);
            self.now = entry.at;
            self.fired += 1;
            (entry.f)(world, self);
            return true;
        }
        false
    }

    /// Run until the calendar is empty.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Run while events exist at or before `t`; then advance the clock to
    /// exactly `t` (even if the calendar goes quiet earlier).
    pub fn run_until(&mut self, world: &mut W, t: SimTime) {
        while let Some(next) = self.peek_time() {
            if next > t {
                break;
            }
            self.step(world);
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Run at most `n` events; returns the number actually fired.
    pub fn run_steps(&mut self, world: &mut W, n: u64) -> u64 {
        let mut fired = 0;
        while fired < n && self.step(world) {
            fired += 1;
        }
        fired
    }

    /// Time of the next pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<u64>,
    }

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn fires_in_time_then_seq_order() {
        let mut eng: HeapEngine<World> = HeapEngine::new();
        let mut w = World::default();
        eng.schedule_at(at(30), |w: &mut World, e| w.log.push(e.now().as_nanos()));
        eng.schedule_at(at(10), |w: &mut World, e| w.log.push(e.now().as_nanos()));
        eng.schedule_at(at(10), |w: &mut World, e| w.log.push(e.now().as_nanos() + 1));
        eng.run(&mut w);
        assert_eq!(w.log, vec![10, 11, 30]);
    }

    #[test]
    fn cancel_of_fired_or_unknown_id_is_a_noop() {
        let mut eng: HeapEngine<World> = HeapEngine::new();
        let mut w = World::default();
        let id = eng.schedule_at(at(5), |w: &mut World, _| w.log.push(5));
        assert!(eng.step(&mut w));
        eng.cancel(id); // already fired
        eng.cancel(id); // twice
        assert_eq!(eng.pending(), 0, "stale cancels do not distort pending()");
        let live = eng.schedule_at(at(9), |w: &mut World, _| w.log.push(9));
        eng.cancel(live);
        eng.cancel(live); // double-cancel of a pending id
        assert_eq!(eng.pending(), 0);
        eng.run(&mut w);
        assert_eq!(w.log, vec![5]);
    }
}
