//! Virtual time: nanosecond-resolution instants and durations.
//!
//! A `u64` nanosecond clock runs for ~584 simulated years, far beyond any
//! experiment here; the paper's own i960 timestamp counter rolls over in
//! minutes and `vxkit::tickstamp` models that rollover *on top of* this
//! non-wrapping kernel clock.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock (nanoseconds since sim start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Raw nanoseconds since sim start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since sim start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since sim start.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since sim start as `f64` (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant; saturates at zero if `earlier` is
    /// actually later (callers comparing out-of-order stamps get 0, never a
    /// wrap to ~584 years).
    #[inline]
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// From microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// From seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// From fractional seconds (workload generators; rounds to ns).
    pub fn from_secs_f64(s: f64) -> SimDuration {
        debug_assert!(s >= 0.0 && s.is_finite());
        SimDuration((s * 1e9).round() as u64)
    }

    /// From fractional microseconds (cost-model calibration constants).
    pub fn from_micros_f64(us: f64) -> SimDuration {
        debug_assert!(us >= 0.0 && us.is_finite());
        SimDuration((us * 1e3).round() as u64)
    }

    /// Time to move `bytes` at `bits_per_sec` line rate (exact integer math,
    /// rounded up — a partial bit still occupies the wire slot).
    pub fn for_bytes_at_bps(bytes: u64, bits_per_sec: u64) -> SimDuration {
        debug_assert!(bits_per_sec > 0);
        let bits = bytes * 8;
        SimDuration((bits.saturating_mul(1_000_000_000)).div_ceil(bits_per_sec))
    }

    /// Time for `cycles` on a clock of `hz` (rounded up).
    pub fn for_cycles_at_hz(cycles: u64, hz: u64) -> SimDuration {
        debug_assert!(hz > 0);
        SimDuration(cycles.saturating_mul(1_000_000_000).div_ceil(hz))
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional microseconds (reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Whole milliseconds.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional milliseconds (reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds (reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Integer-scaled duration.
    #[inline]
    pub const fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_micros(65).as_nanos(), 65_000);
        assert_eq!(SimDuration::from_millis(4).as_micros(), 4_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_micros_f64(65.5).as_nanos(), 65_500);
    }

    #[test]
    fn wire_time_is_exact_and_rounds_up() {
        // 1500-byte Ethernet frame at 100 Mb/s = 120 µs exactly.
        let t = SimDuration::for_bytes_at_bps(1500, 100_000_000);
        assert_eq!(t.as_micros(), 120);
        // 1 byte at 3 bits/s: 8/3 s rounds up.
        let t = SimDuration::for_bytes_at_bps(1, 3);
        assert_eq!(t.as_nanos(), 2_666_666_667);
    }

    #[test]
    fn cycle_time_matches_clock() {
        // 66 MHz i960RD: one cycle ≈ 15.15 ns.
        let t = SimDuration::for_cycles_at_hz(66, 66_000_000);
        assert_eq!(t.as_nanos(), 1_000);
        assert_eq!(SimDuration::for_cycles_at_hz(1, 1_000_000_000).as_nanos(), 1);
    }

    #[test]
    fn time_arithmetic_saturates_down() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(300);
        assert_eq!((b - a).as_nanos(), 200);
        assert_eq!((a - b).as_nanos(), 0);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(65)), "65.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(4)), "4.000ms");
    }
}
