//! The hierarchical timing wheel behind [`Engine`](crate::Engine).
//!
//! # Layout
//!
//! Simulated time is bucketed into *ticks* of `2^GRAIN_BITS` ns
//! (4.096 µs). Three levels of 256 slots cover ticks `[cur, cur + 2^24)`
//! — about 68.7 simulated seconds of horizon — and everything beyond
//! spills into an overflow `BinaryHeap`:
//!
//! * level 0: one slot per tick (the next ≤256 ticks);
//! * level 1: one slot per 256 ticks;
//! * level 2: one slot per 65 536 ticks.
//!
//! An entry's level is chosen by the **highest bit in which its tick
//! differs from `cur`** (not by the delta): slot indices are absolute
//! bit-fields of the tick, so an entry never needs relocation when `cur`
//! moves within a window, and window-crossing deltas (e.g. `cur =
//! 0x..FF`, `tick = cur + 1`) land exactly where a later cascade expects
//! them. Each level keeps a 256-bit occupancy bitmap, so finding the next
//! non-empty slot is four word scans, not a 256-probe walk.
//!
//! # Ordering
//!
//! The engine's contract is exact `(time, seq)` FIFO-stable firing. The
//! wheel maintains a sorted `ready` queue holding every entry due at or
//! before `cur`; `advance` refills it by draining the next level-0 slot
//! (sorted through a reusable scratch buffer), cascading a higher-level
//! slot down when level 0 is empty, or pulling the overflow head group —
//! always bounding each jump of `cur` by the overflow head's tick so a
//! far-future entry can never be leapt over. Entries scheduled at or
//! before `cur` (possible after `run_until` peeked ahead of a quiet
//! calendar) are sort-inserted straight into `ready`, which is correct
//! because every entry still in the wheel has a strictly later tick.
//!
//! Cancellation is the engine's job (its arena marks slots cancelled and
//! skips them as they surface); the wheel only stores `(at, seq, idx)`
//! copies and never touches entry payloads, so slot vectors, the scratch
//! buffer and the cascade buffer all recycle their capacity —
//! steady-state operation allocates nothing.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// log2 of the tick granularity in nanoseconds.
const GRAIN_BITS: u32 = 12;
/// log2 of the slots per level.
const LEVEL_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Hierarchy depth; ticks differing from `cur` above `LEVELS *
/// LEVEL_BITS` bits go to the overflow heap.
const LEVELS: usize = 3;
/// Words per 256-bit occupancy bitmap.
const WORDS: usize = SLOTS / 64;

/// One timer: absolute nanosecond deadline, global schedule sequence,
/// and the engine arena index holding the payload. Derived `Ord` is the
/// firing order (`at`-major, `seq`-minor; `idx` never ties).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) struct TimerEntry {
    pub at: u64,
    pub seq: u64,
    pub idx: u32,
}

#[inline]
fn tick_of(at: u64) -> u64 {
    at >> GRAIN_BITS
}

/// Lowest occupied slot index `>= from`, if any.
#[inline]
fn next_occupied(bitmap: &[u64; WORDS], from: usize) -> Option<usize> {
    if from >= SLOTS {
        return None;
    }
    let mut word = from / 64;
    let mut bits = bitmap[word] & (!0u64 << (from % 64));
    loop {
        if bits != 0 {
            return Some(word * 64 + bits.trailing_zeros() as usize);
        }
        word += 1;
        if word == WORDS {
            return None;
        }
        bits = bitmap[word];
    }
}

pub(crate) struct TimerWheel {
    /// `LEVELS * SLOTS` buckets, flattened (`level * SLOTS + slot`).
    slots: Vec<Vec<TimerEntry>>,
    occupied: [[u64; WORDS]; LEVELS],
    /// Current tick: every entry still in a wheel slot has a strictly
    /// greater tick; every `ready` entry has tick `<= cur`.
    cur: u64,
    /// Entries due now, in exact firing order.
    ready: VecDeque<TimerEntry>,
    /// Entries beyond the wheel horizon, earliest-first.
    overflow: BinaryHeap<Reverse<TimerEntry>>,
    /// Reusable sort buffer for slot drains.
    scratch: Vec<TimerEntry>,
    /// Reusable batch buffer for cascades.
    cascade_buf: Vec<TimerEntry>,
    len: usize,
}

impl TimerWheel {
    pub fn new() -> TimerWheel {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [[0; WORDS]; LEVELS],
            cur: 0,
            ready: VecDeque::new(),
            overflow: BinaryHeap::new(),
            scratch: Vec::new(),
            cascade_buf: Vec::new(),
            len: 0,
        }
    }

    /// Entries stored (including ones the engine has since cancelled).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn insert(&mut self, e: TimerEntry) {
        self.place(e);
        self.len += 1;
    }

    /// Next entry in firing order without removing it.
    pub fn peek_next(&mut self) -> Option<TimerEntry> {
        self.advance();
        self.ready.front().copied()
    }

    /// Remove and return the next entry in firing order.
    pub fn pop_next(&mut self) -> Option<TimerEntry> {
        self.advance();
        let e = self.ready.pop_front()?;
        self.len -= 1;
        Some(e)
    }

    /// File `e` into `ready`, a wheel slot, or the overflow heap.
    fn place(&mut self, e: TimerEntry) {
        let tick = tick_of(e.at);
        if tick <= self.cur {
            let i = self.ready.partition_point(|x| (x.at, x.seq) < (e.at, e.seq));
            self.ready.insert(i, e);
            return;
        }
        let level = ((63 - (tick ^ self.cur).leading_zeros()) / LEVEL_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(Reverse(e));
            return;
        }
        let slot = ((tick >> (level as u32 * LEVEL_BITS)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push(e);
        self.occupied[level][slot / 64] |= 1u64 << (slot % 64);
    }

    /// Refill `ready` with the next due tick's entries (no-op while
    /// non-empty or when the wheel is exhausted).
    fn advance(&mut self) {
        loop {
            // Overflow entries whose tick `cur` has reached merge into
            // `ready` in exact order (heap pops earliest-first; ties with
            // slot-drained entries are resolved by the sorted insert).
            while let Some(&Reverse(e)) = self.overflow.peek() {
                if tick_of(e.at) > self.cur {
                    break;
                }
                self.overflow.pop();
                let i = self.ready.partition_point(|x| (x.at, x.seq) < (e.at, e.seq));
                self.ready.insert(i, e);
            }
            if !self.ready.is_empty() {
                return;
            }
            let overflow_tick = self.overflow.peek().map(|&Reverse(e)| tick_of(e.at));
            // Lower levels always hold strictly earlier ticks than higher
            // ones, so the first occupied slot found level-by-level is the
            // next wheel tick (level 0) or its enclosing window (higher).
            let mut progressed = false;
            for level in 0..LEVELS {
                let shift = level as u32 * LEVEL_BITS;
                let pos = ((self.cur >> shift) & (SLOTS as u64 - 1)) as usize;
                let Some(slot) = next_occupied(&self.occupied[level], pos + 1) else {
                    continue;
                };
                let base = (self.cur >> (shift + LEVEL_BITS)) << (shift + LEVEL_BITS);
                let next_cur = base | ((slot as u64) << shift);
                if overflow_tick.is_some_and(|t| t < next_cur) {
                    // The overflow head fires before this slot; the jump
                    // below must not advance `cur` past it.
                    break;
                }
                // Sparse-calendar fast path: this slot is the earliest
                // occupied one across all levels, so a lone entry is the
                // wheel's next timer — jump straight to its tick and skip
                // the cascade/drain machinery (and, at higher levels, the
                // intermediate re-placements). Simulations that keep only
                // a handful of timers in flight take this path almost
                // every event. Guarded strictly against the overflow head
                // so an equal-tick overflow entry still merges first.
                let bucket = &mut self.slots[level * SLOTS + slot];
                if bucket.len() == 1 {
                    let e = bucket[0];
                    let etick = tick_of(e.at);
                    if overflow_tick.is_none_or(|t| t > etick) {
                        bucket.clear();
                        self.occupied[level][slot / 64] &= !(1u64 << (slot % 64));
                        self.cur = etick;
                        self.ready.push_back(e);
                        return;
                    }
                }
                self.cur = next_cur;
                if level == 0 {
                    self.drain_slot(slot);
                } else {
                    self.cascade(level, slot);
                }
                progressed = true;
                break;
            }
            if progressed {
                continue;
            }
            match overflow_tick {
                // Wheel empty (or beaten by the overflow head): jump to
                // the head group; the merge above pulls it next pass.
                Some(t) => self.cur = self.cur.max(t),
                None => return,
            }
        }
    }

    /// Drain one level-0 slot (the tick `cur` now points at) into
    /// `ready`, sorted.
    fn drain_slot(&mut self, slot: usize) {
        std::mem::swap(&mut self.scratch, &mut self.slots[slot]);
        self.occupied[0][slot / 64] &= !(1u64 << (slot % 64));
        self.scratch.sort_unstable();
        self.ready.extend(self.scratch.drain(..));
    }

    /// Redistribute one higher-level slot after `cur` jumped to its
    /// window base: every entry lands at a strictly lower level (or in
    /// `ready` when its tick equals the new `cur`).
    fn cascade(&mut self, level: usize, slot: usize) {
        let mut batch = std::mem::take(&mut self.cascade_buf);
        std::mem::swap(&mut batch, &mut self.slots[level * SLOTS + slot]);
        self.occupied[level][slot / 64] &= !(1u64 << (slot % 64));
        for e in batch.drain(..) {
            self.place(e);
        }
        self.cascade_buf = batch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(at: u64, seq: u64) -> TimerEntry {
        TimerEntry {
            at,
            seq,
            idx: seq as u32,
        }
    }

    fn drain(w: &mut TimerWheel) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(x) = w.pop_next() {
            out.push((x.at, x.seq));
        }
        out
    }

    #[test]
    fn fires_in_at_then_seq_order() {
        let mut w = TimerWheel::new();
        for (i, at) in [50_000u64, 3, 3, 900_000, 50_000].iter().enumerate() {
            w.insert(e(*at, i as u64));
        }
        assert_eq!(
            drain(&mut w),
            vec![(3, 1), (3, 2), (50_000, 0), (50_000, 4), (900_000, 3)]
        );
    }

    #[test]
    fn window_boundary_crossing() {
        // cur lands at the very end of a level-1 window; the +1-tick
        // neighbour differs in a high bit and must still fire next.
        let mut w = TimerWheel::new();
        let end_of_window = (0x00FF_FFFFu64 << GRAIN_BITS) + 5;
        let just_after = (0x0100_0000u64 << GRAIN_BITS) + 1;
        w.insert(e(end_of_window, 0));
        w.insert(e(just_after, 1));
        assert_eq!(drain(&mut w), vec![(end_of_window, 0), (just_after, 1)]);
    }

    #[test]
    fn overflow_interleaves_with_wheel_entries() {
        let mut w = TimerWheel::new();
        let far = 200u64 << 36; // deep overflow territory
        w.insert(e(far + 7, 0));
        w.insert(e(10, 1));
        assert_eq!(w.pop_next(), Some(e(10, 1)));
        // After the near entry fires, later inserts near the overflow
        // head must still order correctly against it.
        w.insert(e(far + 3, 2));
        assert_eq!(drain(&mut w), vec![(far + 3, 2), (far + 7, 0)]);
    }

    #[test]
    fn overflow_ties_merge_with_slot_entries() {
        let mut w = TimerWheel::new();
        let far = 3u64 << 36;
        w.insert(e(far + 10, 0)); // overflow at insert time
        w.insert(e(5, 1));
        assert_eq!(w.pop_next(), Some(e(5, 1)));
        // Same tick as the overflow head, scheduled later (wheel side).
        w.insert(e(far + 2, 2));
        w.insert(e(far + 20, 3));
        assert_eq!(drain(&mut w), vec![(far + 2, 2), (far + 10, 0), (far + 20, 3)]);
    }

    #[test]
    fn insert_at_or_before_cur_goes_to_ready() {
        let mut w = TimerWheel::new();
        w.insert(e(1 << 20, 0));
        assert_eq!(w.peek_next(), Some(e(1 << 20, 0))); // advances cur
                                                        // Earlier than the peeked entry (legal after run_until moved the
                                                        // clock without firing): must come out first.
        w.insert(e(100, 1));
        assert_eq!(drain(&mut w), vec![(100, 1), (1 << 20, 0)]);
    }

    #[test]
    fn len_tracks_inserts_and_pops() {
        let mut w = TimerWheel::new();
        assert_eq!(w.len(), 0);
        w.insert(e(1, 0));
        w.insert(e(1 << 30, 1));
        w.insert(e(1 << 40, 2));
        assert_eq!(w.len(), 3);
        let _ = w.pop_next();
        assert_eq!(w.len(), 2);
        let _ = drain(&mut w);
        assert_eq!(w.len(), 0);
        assert_eq!(w.pop_next(), None);
    }

    #[test]
    fn dense_same_tick_burst_is_fifo() {
        let mut w = TimerWheel::new();
        for s in 0..100u64 {
            w.insert(e(4096 * 3 + 1, s));
        }
        let fired = drain(&mut w);
        assert_eq!(fired.len(), 100);
        assert!(fired.windows(2).all(|p| p[0].1 < p[1].1));
    }

    #[test]
    fn matches_sorted_reference_on_scattered_times() {
        // Cheap deterministic scatter across all levels + overflow.
        let mut w = TimerWheel::new();
        let mut want = Vec::new();
        let mut x = 0x9e37_79b9u64;
        for seq in 0..500u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let at = x % (1u64 << 38); // spans wheel horizon and overflow
            w.insert(e(at, seq));
            want.push((at, seq));
        }
        want.sort_unstable();
        assert_eq!(drain(&mut w), want);
    }
}
