//! The event-scheduling executive.
//!
//! A hierarchical timing wheel of `(time, sequence)` entries (see
//! [`crate::wheel`] for the layout) over a slab arena that owns the event
//! closures. The sequence number makes simultaneous events fire in
//! scheduling order (FIFO-stable), which the hardware models rely on for
//! determinism (e.g. two DMA completions in the same nanosecond); the
//! wheel preserves that order *exactly*, bit-for-bit against the original
//! binary-heap executive (kept as [`crate::reference::HeapEngine`] and
//! pinned by a differential property test).
//!
//! Events are boxed `FnOnce(&mut W, &mut Engine<W>)` closures: the *world*
//! `W` is whatever struct the caller composes out of hardware models, and
//! the engine hands it back mutably to each event together with itself so
//! the event can schedule follow-ups. Keeping the world outside the engine
//! avoids interior mutability entirely.
//!
//! # Why a wheel
//!
//! The heap executive paid `O(log n)` sift work per schedule and per pop,
//! plus an ordered-set membership probe per pop for cancellation. Here a
//! schedule is a bitmap update and a push onto a recycled slot vector, a
//! pop is a bitmap scan amortised over a whole tick's worth of events,
//! and cancellation is an `O(1)` arena mark — the `EventId` carries its
//! arena index and a generation counter, so cancelling a fired, unknown
//! or doubly-cancelled id is a true no-op and [`Engine::pending`] stays
//! exact (the old executive leaked a tombstone per stale cancel).

use crate::time::{SimDuration, SimTime};
use crate::wheel::{TimerEntry, TimerWheel};

/// A scheduled event: a one-shot closure over the world and the engine.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

/// Identifier of a scheduled event, usable with [`Engine::cancel`].
///
/// Packs the arena slot index with the slot's generation at scheduling
/// time; the generation advances when the slot is recycled, so a stale id
/// can never cancel a later event that happens to reuse the slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    fn new(generation: u32, index: u32) -> EventId {
        EventId((u64::from(generation) << 32) | u64::from(index))
    }

    fn index(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Arena slot payload states. `Free` slots sit on the free list;
/// `Cancelled` slots wait for their wheel entry to surface and be
/// discarded (lazy cancellation keeps the wheel remove-free).
enum SlotState<W> {
    Free,
    Pending(EventFn<W>),
    Cancelled,
}

struct ArenaSlot<W> {
    generation: u32,
    state: SlotState<W>,
}

/// Observer invoked as each event fires: `(time, sequence)`. The sequence
/// number is the one [`Engine::schedule_at`] assigned, so a hook sees the
/// exact deterministic firing order and can feed an external tracer
/// without touching the world.
pub type FireHook = Box<dyn FnMut(SimTime, u64)>;

/// The discrete-event engine for worlds of type `W`.
pub struct Engine<W> {
    now: SimTime,
    wheel: TimerWheel,
    /// Event storage; slots recycle through `free` so steady-state
    /// scheduling reuses both the slot and its box-free `SlotState` move.
    arena: Vec<ArenaSlot<W>>,
    free: Vec<u32>,
    seq: u64,
    fired: u64,
    pending: usize,
    hook: Option<FireHook>,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<W> Engine<W> {
    /// A fresh engine at t = 0 with an empty calendar.
    pub fn new() -> Engine<W> {
        Engine {
            now: SimTime::ZERO,
            wheel: TimerWheel::new(),
            arena: Vec::new(),
            free: Vec::new(),
            seq: 0,
            fired: 0,
            pending: 0,
            hook: None,
        }
    }

    /// Install an observer called as each event fires, after the clock has
    /// advanced to the event's time but before the event itself runs.
    /// Replaces any previous hook.
    pub fn set_fire_hook(&mut self, hook: impl FnMut(SimTime, u64) + 'static) {
        self.hook = Some(Box::new(hook));
    }

    /// Remove the fire observer, returning it if one was installed.
    pub fn clear_fire_hook(&mut self) -> Option<FireHook> {
        self.hook.take()
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far (diagnostics).
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of pending (non-cancelled) events. Exact: cancels of
    /// already-fired or unknown ids do not distort the count.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Schedule `f` at absolute time `at`. Scheduling in the past is a logic
    /// error in a model; it fires immediately at `now` instead (clamped) and
    /// is flagged in debug builds.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Engine<W>) + 'static) -> EventId {
        debug_assert!(at >= self.now, "event scheduled in the past: {at:?} < {:?}", self.now);
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let f: EventFn<W> = Box::new(f);
        let idx = match self.free.pop() {
            Some(i) => {
                self.arena[i as usize].state = SlotState::Pending(f);
                i
            }
            None => {
                self.arena.push(ArenaSlot {
                    generation: 0,
                    state: SlotState::Pending(f),
                });
                (self.arena.len() - 1) as u32
            }
        };
        self.wheel.insert(TimerEntry {
            at: at.as_nanos(),
            seq,
            idx,
        });
        self.pending += 1;
        // The wheel also holds cancelled-but-not-yet-surfaced entries.
        debug_assert!(self.pending <= self.wheel.len());
        EventId::new(self.arena[idx as usize].generation, idx)
    }

    /// Schedule `f` after a delay from now.
    pub fn schedule_in(&mut self, dt: SimDuration, f: impl FnOnce(&mut W, &mut Engine<W>) + 'static) -> EventId {
        self.schedule_at(self.now + dt, f)
    }

    /// Schedule `f` at the current instant, after all already-queued events
    /// for this instant (FIFO ordering by sequence).
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut W, &mut Engine<W>) + 'static) -> EventId {
        self.schedule_at(self.now, f)
    }

    /// Cancel a pending event. Cancelling an already-fired, unknown or
    /// already-cancelled id is a true no-op (timers race with their own
    /// expiry; that is normal): the generation check rejects stale ids
    /// outright, so no bookkeeping leaks.
    pub fn cancel(&mut self, id: EventId) {
        if let Some(slot) = self.arena.get_mut(id.index()) {
            if slot.generation == id.generation() && matches!(slot.state, SlotState::Pending(_)) {
                slot.state = SlotState::Cancelled;
                self.pending -= 1;
            }
        }
    }

    /// Retire an arena slot whose wheel entry has surfaced: bump the
    /// generation (invalidating outstanding ids) and recycle the index.
    fn release(&mut self, idx: u32) -> SlotState<W> {
        let slot = &mut self.arena[idx as usize];
        let state = std::mem::replace(&mut slot.state, SlotState::Free);
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(idx);
        state
    }

    /// Fire the next event, if any. Returns `false` when the calendar is
    /// exhausted.
    pub fn step(&mut self, world: &mut W) -> bool {
        while let Some(entry) = self.wheel.pop_next() {
            match self.release(entry.idx) {
                SlotState::Pending(f) => {
                    let at = SimTime::from_nanos(entry.at);
                    debug_assert!(at >= self.now);
                    self.now = at;
                    self.fired += 1;
                    self.pending -= 1;
                    if let Some(hook) = self.hook.as_mut() {
                        hook(at, entry.seq);
                    }
                    f(world, self);
                    return true;
                }
                // Cancelled (already uncounted) or stale: keep draining.
                SlotState::Cancelled | SlotState::Free => continue,
            }
        }
        false
    }

    /// Run until the calendar is empty.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Run while events exist at or before `t`; then advance the clock to
    /// exactly `t` (even if the calendar goes quiet earlier).
    pub fn run_until(&mut self, world: &mut W, t: SimTime) {
        while let Some(next) = self.peek_time() {
            if next > t {
                break;
            }
            self.step(world);
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Run at most `n` events (watchdog for potentially livelocked models).
    /// Returns the number actually fired.
    pub fn run_steps(&mut self, world: &mut W, n: u64) -> u64 {
        let mut fired = 0;
        while fired < n && self.step(world) {
            fired += 1;
        }
        fired
    }

    /// Time of the next pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let entry = self.wheel.peek_next()?;
            if matches!(self.arena[entry.idx as usize].state, SlotState::Pending(_)) {
                return Some(SimTime::from_nanos(entry.at));
            }
            // Cancelled or stale: retire it eagerly so peek is O(live).
            let _ = self.wheel.pop_next();
            let _ = self.release(entry.idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn fires_in_time_order() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(at(30), |w: &mut World, e| w.log.push((e.now().as_nanos(), "c")));
        eng.schedule_at(at(10), |w: &mut World, e| w.log.push((e.now().as_nanos(), "a")));
        eng.schedule_at(at(20), |w: &mut World, e| w.log.push((e.now().as_nanos(), "b")));
        eng.run(&mut w);
        assert_eq!(w.log, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(eng.events_fired(), 3);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for name in ["first", "second", "third"] {
            eng.schedule_at(at(5), move |w: &mut World, _| w.log.push((5, name)));
        }
        eng.run(&mut w);
        assert_eq!(
            w.log.iter().map(|&(_, n)| n).collect::<Vec<_>>(),
            ["first", "second", "third"]
        );
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(at(1), |_w: &mut World, e| {
            e.schedule_in(SimDuration::from_nanos(9), |w: &mut World, e| {
                w.log.push((e.now().as_nanos(), "chained"));
            });
        });
        eng.run(&mut w);
        assert_eq!(w.log, vec![(10, "chained")]);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let id = eng.schedule_at(at(10), |w: &mut World, _| w.log.push((10, "no")));
        eng.schedule_at(at(20), |w: &mut World, _| w.log.push((20, "yes")));
        eng.cancel(id);
        eng.run(&mut w);
        assert_eq!(w.log, vec![(20, "yes")]);
        assert_eq!(eng.pending(), 0);
    }

    /// Regression test for the cancel leak: cancelling a fired, unknown
    /// or already-cancelled id must leave `pending()` exact (the heap
    /// executive recorded a tombstone per stale cancel, so `pending()` —
    /// computed as `heap.len() - cancelled.len()` — undercounted and
    /// could underflow once the tombstones outnumbered live entries).
    #[test]
    fn cancel_of_nonpending_id_is_a_true_noop() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let fired = eng.schedule_at(at(1), |w: &mut World, _| w.log.push((1, "fired")));
        assert!(eng.step(&mut w));
        assert_eq!(eng.pending(), 0);
        // Fired id, cancelled repeatedly: nothing changes.
        eng.cancel(fired);
        eng.cancel(fired);
        assert_eq!(eng.pending(), 0);
        // A live event cancelled twice decrements exactly once…
        let live = eng.schedule_at(at(10), |w: &mut World, _| w.log.push((10, "never")));
        assert_eq!(eng.pending(), 1);
        eng.cancel(live);
        eng.cancel(live);
        assert_eq!(eng.pending(), 0);
        // …and the calendar still drains without underflow or ghosts.
        eng.schedule_at(at(20), |w: &mut World, _| w.log.push((20, "live")));
        assert_eq!(eng.pending(), 1);
        eng.run(&mut w);
        assert_eq!(w.log, vec![(1, "fired"), (20, "live")]);
        assert_eq!(eng.pending(), 0);
    }

    /// A stale id must not cancel a later event that recycled its slot.
    #[test]
    fn stale_id_cannot_cancel_slot_reuser() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let first = eng.schedule_at(at(1), |w: &mut World, _| w.log.push((1, "first")));
        assert!(eng.step(&mut w));
        // The next schedule reuses the arena slot `first` occupied.
        eng.schedule_at(at(5), |w: &mut World, _| w.log.push((5, "reuser")));
        eng.cancel(first);
        eng.run(&mut w);
        assert_eq!(w.log, vec![(1, "first"), (5, "reuser")]);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(at(10), |w: &mut World, _| w.log.push((10, "in")));
        eng.schedule_at(at(100), |w: &mut World, _| w.log.push((100, "out")));
        eng.run_until(&mut w, at(50));
        assert_eq!(w.log, vec![(10, "in")]);
        assert_eq!(eng.now(), at(50));
        eng.run(&mut w);
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn run_until_advances_even_when_quiet() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.run_until(&mut w, at(1_000));
        assert_eq!(eng.now(), at(1_000));
    }

    /// `run_until` peeks ahead; a subsequent schedule *between* `now` and
    /// the peeked event must still fire first (the wheel files it into
    /// the ready queue even though its tick is behind the wheel cursor).
    #[test]
    fn schedule_between_now_and_peeked_event_fires_first() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(at(10_000_000), |w: &mut World, _| w.log.push((10_000_000, "far")));
        eng.run_until(&mut w, at(1_000));
        assert_eq!(eng.now(), at(1_000));
        eng.schedule_at(at(2_000), |w: &mut World, _| w.log.push((2_000, "near")));
        eng.run(&mut w);
        assert_eq!(w.log, vec![(2_000, "near"), (10_000_000, "far")]);
    }

    /// Events beyond the wheel horizon (> ~68 s) take the overflow path
    /// and still interleave exactly with near-horizon events.
    #[test]
    fn far_future_events_cross_the_overflow_horizon() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let far = 100_000_000_000; // 100 s
        eng.schedule_at(at(far), move |w: &mut World, _| w.log.push((far, "far")));
        eng.schedule_at(at(5), |w: &mut World, _| w.log.push((5, "near")));
        eng.run(&mut w);
        assert_eq!(w.log, vec![(5, "near"), (far, "far")]);
        assert_eq!(eng.events_fired(), 2);
    }

    #[test]
    fn step_returns_false_on_empty() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        assert!(!eng.step(&mut w));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut eng: Engine<World> = Engine::new();
        let id = eng.schedule_at(at(5), |_: &mut World, _| {});
        eng.schedule_at(at(7), |_: &mut World, _| {});
        eng.cancel(id);
        assert_eq!(eng.peek_time(), Some(at(7)));
    }

    #[test]
    fn fire_hook_observes_time_and_sequence_before_each_event() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let log = seen.clone();
        eng.set_fire_hook(move |t, seq| log.borrow_mut().push((t.as_nanos(), seq)));
        let cancelled = eng.schedule_at(at(5), |_: &mut World, _| {});
        eng.schedule_at(at(10), |w: &mut World, _| w.log.push((10, "a")));
        eng.schedule_at(at(10), |w: &mut World, _| w.log.push((10, "b")));
        eng.cancel(cancelled);
        eng.run(&mut w);
        // Cancelled events never reach the hook; survivors report the
        // sequence numbers schedule_at assigned, in firing order.
        assert_eq!(*seen.borrow(), vec![(10, 1), (10, 2)]);
        assert_eq!(w.log, vec![(10, "a"), (10, "b")]);
    }

    #[test]
    fn clear_fire_hook_stops_observation() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let log = seen.clone();
        eng.set_fire_hook(move |t, _| log.borrow_mut().push(t.as_nanos()));
        eng.schedule_at(at(1), |_: &mut World, _| {});
        eng.step(&mut w);
        assert!(eng.clear_fire_hook().is_some());
        assert!(eng.clear_fire_hook().is_none(), "already removed");
        eng.schedule_at(at(2), |_: &mut World, _| {});
        eng.step(&mut w);
        assert_eq!(*seen.borrow(), vec![1], "nothing observed after clear");
    }

    #[test]
    fn run_steps_bounds_execution() {
        // A self-rescheduling event would otherwise run forever.
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        fn tick(w: &mut World, e: &mut Engine<World>) {
            w.log.push((e.now().as_nanos(), "tick"));
            e.schedule_in(SimDuration::from_nanos(1), tick);
        }
        eng.schedule_at(at(0), tick);
        let fired = eng.run_steps(&mut w, 5);
        assert_eq!(fired, 5);
        assert_eq!(w.log.len(), 5);
    }

    /// The arena must recycle slots: a long self-rescheduling run keeps a
    /// bounded arena no matter how many events fire.
    #[test]
    fn arena_recycles_slots_under_churn() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        fn tick(_w: &mut World, e: &mut Engine<World>) {
            e.schedule_in(SimDuration::from_nanos(100), tick);
        }
        for _ in 0..4 {
            eng.schedule_at(at(0), tick);
        }
        eng.run_steps(&mut w, 10_000);
        assert_eq!(eng.pending(), 4);
        assert!(eng.arena.len() <= 8, "arena grew to {} slots", eng.arena.len());
    }
}
