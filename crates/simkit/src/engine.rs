//! The event-scheduling executive.
//!
//! A binary heap of `(time, sequence, event)` entries. The sequence number
//! makes simultaneous events fire in scheduling order (FIFO-stable), which
//! the hardware models rely on for determinism (e.g. two DMA completions in
//! the same nanosecond).
//!
//! Events are boxed `FnOnce(&mut W, &mut Engine<W>)` closures: the *world*
//! `W` is whatever struct the caller composes out of hardware models, and
//! the engine hands it back mutably to each event together with itself so
//! the event can schedule follow-ups. Keeping the world outside the engine
//! avoids interior mutability entirely.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
// BTreeSet rather than HashSet: iteration-order-free here, but the simkit
// determinism lint bans randomized-state containers wholesale so models never
// grow an order dependence by accident.
use std::collections::{BTreeSet, BinaryHeap};

/// A scheduled event: a one-shot closure over the world and the engine.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

/// Identifier of a scheduled event, usable with [`Engine::cancel`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Entry<W> {
    at: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, and
        // among equals lowest sequence first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Observer invoked as each event fires: `(time, sequence)`. The sequence
/// number is the one [`Engine::schedule_at`] assigned, so a hook sees the
/// exact deterministic firing order and can feed an external tracer
/// without touching the world.
pub type FireHook = Box<dyn FnMut(SimTime, u64)>;

/// The discrete-event engine for worlds of type `W`.
pub struct Engine<W> {
    now: SimTime,
    heap: BinaryHeap<Entry<W>>,
    seq: u64,
    cancelled: BTreeSet<u64>,
    fired: u64,
    hook: Option<FireHook>,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<W> Engine<W> {
    /// A fresh engine at t = 0 with an empty calendar.
    pub fn new() -> Engine<W> {
        Engine {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            seq: 0,
            cancelled: BTreeSet::new(),
            fired: 0,
            hook: None,
        }
    }

    /// Install an observer called as each event fires, after the clock has
    /// advanced to the event's time but before the event itself runs.
    /// Replaces any previous hook.
    pub fn set_fire_hook(&mut self, hook: impl FnMut(SimTime, u64) + 'static) {
        self.hook = Some(Box::new(hook));
    }

    /// Remove the fire observer, returning it if one was installed.
    pub fn clear_fire_hook(&mut self) -> Option<FireHook> {
        self.hook.take()
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far (diagnostics).
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Schedule `f` at absolute time `at`. Scheduling in the past is a logic
    /// error in a model; it fires immediately at `now` instead (clamped) and
    /// is flagged in debug builds.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Engine<W>) + 'static) -> EventId {
        debug_assert!(at >= self.now, "event scheduled in the past: {at:?} < {:?}", self.now);
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            f: Box::new(f),
        });
        EventId(seq)
    }

    /// Schedule `f` after a delay from now.
    pub fn schedule_in(&mut self, dt: SimDuration, f: impl FnOnce(&mut W, &mut Engine<W>) + 'static) -> EventId {
        self.schedule_at(self.now + dt, f)
    }

    /// Schedule `f` at the current instant, after all already-queued events
    /// for this instant (FIFO ordering by sequence).
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut W, &mut Engine<W>) + 'static) -> EventId {
        self.schedule_at(self.now, f)
    }

    /// Cancel a pending event. Cancelling an already-fired or unknown id is
    /// a no-op (timers race with their own expiry; that is normal).
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Fire the next event, if any. Returns `false` when the calendar is
    /// exhausted.
    pub fn step(&mut self, world: &mut W) -> bool {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            self.fired += 1;
            if let Some(hook) = self.hook.as_mut() {
                hook(entry.at, entry.seq);
            }
            (entry.f)(world, self);
            return true;
        }
        false
    }

    /// Run until the calendar is empty.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Run while events exist at or before `t`; then advance the clock to
    /// exactly `t` (even if the calendar goes quiet earlier).
    pub fn run_until(&mut self, world: &mut W, t: SimTime) {
        while let Some(next) = self.peek_time() {
            if next > t {
                break;
            }
            self.step(world);
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Run at most `n` events (watchdog for potentially livelocked models).
    /// Returns the number actually fired.
    pub fn run_steps(&mut self, world: &mut W, n: u64) -> u64 {
        let mut fired = 0;
        while fired < n && self.step(world) {
            fired += 1;
        }
        fired
    }

    /// Time of the next pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn fires_in_time_order() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(at(30), |w: &mut World, e| w.log.push((e.now().as_nanos(), "c")));
        eng.schedule_at(at(10), |w: &mut World, e| w.log.push((e.now().as_nanos(), "a")));
        eng.schedule_at(at(20), |w: &mut World, e| w.log.push((e.now().as_nanos(), "b")));
        eng.run(&mut w);
        assert_eq!(w.log, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(eng.events_fired(), 3);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for name in ["first", "second", "third"] {
            eng.schedule_at(at(5), move |w: &mut World, _| w.log.push((5, name)));
        }
        eng.run(&mut w);
        assert_eq!(
            w.log.iter().map(|&(_, n)| n).collect::<Vec<_>>(),
            ["first", "second", "third"]
        );
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(at(1), |_w: &mut World, e| {
            e.schedule_in(SimDuration::from_nanos(9), |w: &mut World, e| {
                w.log.push((e.now().as_nanos(), "chained"));
            });
        });
        eng.run(&mut w);
        assert_eq!(w.log, vec![(10, "chained")]);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let id = eng.schedule_at(at(10), |w: &mut World, _| w.log.push((10, "no")));
        eng.schedule_at(at(20), |w: &mut World, _| w.log.push((20, "yes")));
        eng.cancel(id);
        eng.run(&mut w);
        assert_eq!(w.log, vec![(20, "yes")]);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(at(10), |w: &mut World, _| w.log.push((10, "in")));
        eng.schedule_at(at(100), |w: &mut World, _| w.log.push((100, "out")));
        eng.run_until(&mut w, at(50));
        assert_eq!(w.log, vec![(10, "in")]);
        assert_eq!(eng.now(), at(50));
        eng.run(&mut w);
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn run_until_advances_even_when_quiet() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.run_until(&mut w, at(1_000));
        assert_eq!(eng.now(), at(1_000));
    }

    #[test]
    fn step_returns_false_on_empty() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        assert!(!eng.step(&mut w));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut eng: Engine<World> = Engine::new();
        let id = eng.schedule_at(at(5), |_: &mut World, _| {});
        eng.schedule_at(at(7), |_: &mut World, _| {});
        eng.cancel(id);
        assert_eq!(eng.peek_time(), Some(at(7)));
    }

    #[test]
    fn fire_hook_observes_time_and_sequence_before_each_event() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let log = seen.clone();
        eng.set_fire_hook(move |t, seq| log.borrow_mut().push((t.as_nanos(), seq)));
        let cancelled = eng.schedule_at(at(5), |_: &mut World, _| {});
        eng.schedule_at(at(10), |w: &mut World, _| w.log.push((10, "a")));
        eng.schedule_at(at(10), |w: &mut World, _| w.log.push((10, "b")));
        eng.cancel(cancelled);
        eng.run(&mut w);
        // Cancelled events never reach the hook; survivors report the
        // sequence numbers schedule_at returned, in firing order.
        assert_eq!(*seen.borrow(), vec![(10, 1), (10, 2)]);
        assert_eq!(w.log, vec![(10, "a"), (10, "b")]);
    }

    #[test]
    fn clear_fire_hook_stops_observation() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let log = seen.clone();
        eng.set_fire_hook(move |t, _| log.borrow_mut().push(t.as_nanos()));
        eng.schedule_at(at(1), |_: &mut World, _| {});
        eng.step(&mut w);
        assert!(eng.clear_fire_hook().is_some());
        assert!(eng.clear_fire_hook().is_none(), "already removed");
        eng.schedule_at(at(2), |_: &mut World, _| {});
        eng.step(&mut w);
        assert_eq!(*seen.borrow(), vec![1], "nothing observed after clear");
    }

    #[test]
    fn run_steps_bounds_execution() {
        // A self-rescheduling event would otherwise run forever.
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        fn tick(w: &mut World, e: &mut Engine<World>) {
            w.log.push((e.now().as_nanos(), "tick"));
            e.schedule_in(SimDuration::from_nanos(1), tick);
        }
        eng.schedule_at(at(0), tick);
        let fired = eng.run_steps(&mut w, 5);
        assert_eq!(fired, 5);
        assert_eq!(w.log.len(), 5);
    }
}
