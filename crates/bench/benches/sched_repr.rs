//! Ablation: scheduling decision cost vs schedule representation and
//! stream count (§3.1.1's data-structure experimentation, measured for
//! real on the host CPU rather than the simulated i960).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dwcs::{
    BTreeRepr, CalendarQueue, DualHeap, DwcsScheduler, FrameDesc, FrameKind, LinearScan, ScheduleRepr, SortedList,
    StreamId, StreamQos,
};
use std::hint::black_box;

fn drive<R: ScheduleRepr>(repr: R, streams: u32, frames_per_stream: u64) -> u64 {
    let mut s = DwcsScheduler::new(repr);
    let sids: Vec<StreamId> = (0..streams)
        .map(|i| s.add_stream(StreamQos::new(1_000_000 + u64::from(i) * 7_919, 2, 8)))
        .collect();
    for seq in 0..frames_per_stream {
        for (i, &sid) in sids.iter().enumerate() {
            s.enqueue(
                sid,
                FrameDesc::new(sid, seq, 1000, FrameKind::P),
                seq * 1_000 + i as u64,
            );
        }
    }
    let mut sent = 0u64;
    let mut t = 0u64;
    loop {
        let d = s.schedule_next(t);
        match d.frame {
            Some(_) => sent += 1,
            None => break,
        }
        t += 10_000;
    }
    sent
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_repr");
    g.sample_size(10);
    for &streams in &[4u32, 32, 128] {
        let frames = 2_000 / u64::from(streams).max(1);
        g.bench_with_input(BenchmarkId::new("linear-scan", streams), &streams, |b, &n| {
            b.iter(|| black_box(drive(LinearScan::new(n as usize), n, frames)))
        });
        g.bench_with_input(BenchmarkId::new("sorted-list", streams), &streams, |b, &n| {
            b.iter(|| black_box(drive(SortedList::new(), n, frames)))
        });
        g.bench_with_input(BenchmarkId::new("dual-heap", streams), &streams, |b, &n| {
            b.iter(|| black_box(drive(DualHeap::new(n as usize), n, frames)))
        });
        g.bench_with_input(BenchmarkId::new("btree", streams), &streams, |b, &n| {
            b.iter(|| black_box(drive(BTreeRepr::new(), n, frames)))
        });
        g.bench_with_input(BenchmarkId::new("calendar-queue", streams), &streams, |b, &n| {
            b.iter(|| black_box(drive(CalendarQueue::new(1_000_000, 32), n, frames)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
