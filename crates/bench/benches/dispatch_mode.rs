//! §3.1.1's coupled-vs-decoupled scheduling/dispatch trade, measured for
//! real: decision rate with immediate dispatch against decisions feeding a
//! dispatch queue.

use criterion::{criterion_group, criterion_main, Criterion};
use dwcs::{DispatchMode, DualHeap, DwcsScheduler, FrameDesc, FrameKind, SchedulerConfig, StreamQos};
use std::hint::black_box;

fn run(mode: DispatchMode) -> u64 {
    let cfg = SchedulerConfig {
        dispatch: mode,
        ..SchedulerConfig::default()
    };
    let mut s = DwcsScheduler::with_config(DualHeap::new(8), cfg);
    let sids: Vec<_> = (0..8)
        .map(|i| s.add_stream(StreamQos::new(1_000_000 + i * 31, 2, 8)))
        .collect();
    for seq in 0..250u64 {
        for &sid in &sids {
            s.enqueue(sid, FrameDesc::new(sid, seq, 1000, FrameKind::P), seq);
        }
    }
    let mut sent = 0u64;
    let mut t = 0u64;
    loop {
        let d = s.schedule_next(t);
        if d.frame.is_some() {
            sent += 1;
        }
        while s.pop_dispatch(t).is_some() {
            sent += 1;
        }
        if !s.has_pending() {
            break;
        }
        t += 5_000;
    }
    sent
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch_mode");
    g.bench_function("coupled", |b| b.iter(|| black_box(run(DispatchMode::Coupled))));
    g.bench_function("decoupled_cap64", |b| {
        b.iter(|| black_box(run(DispatchMode::Decoupled { queue_cap: 64 })))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
