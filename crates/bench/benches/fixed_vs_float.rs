//! The paper's fixed-point-vs-float trade measured on a modern host:
//! cross-multiplied `Frac` priority tests against `f64` division, plus
//! window-adjustment loops in both styles.

use criterion::{criterion_group, criterion_main, Criterion};
use fixedpt::{Frac, Q16};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fixed_vs_float");
    let pairs: Vec<(u32, u32, u32, u32)> = (0..256)
        .map(|i| (i % 13 + 1, i % 17 + 2, i % 7 + 1, i % 23 + 2))
        .collect();

    g.bench_function("frac_cross_multiply_compare", |b| {
        b.iter(|| {
            let mut wins = 0u32;
            for &(a, bd, c_, d) in &pairs {
                let x = Frac::new(a, bd);
                let y = Frac::new(c_, d);
                if black_box(x) < black_box(y) {
                    wins += 1;
                }
            }
            black_box(wins)
        })
    });

    g.bench_function("f64_divide_compare", |b| {
        b.iter(|| {
            let mut wins = 0u32;
            for &(a, bd, c_, d) in &pairs {
                let x = f64::from(a) / f64::from(bd);
                let y = f64::from(c_) / f64::from(d);
                if black_box(x) < black_box(y) {
                    wins += 1;
                }
            }
            black_box(wins)
        })
    });

    g.bench_function("q16_ewma_chain", |b| {
        b.iter(|| {
            let mut est = Q16::ZERO;
            for &(a, _, _, _) in &pairs {
                est = est.ewma_toward(Q16::from_int(a as i32), 3);
            }
            black_box(est)
        })
    });

    g.bench_function("f64_ewma_chain", |b| {
        b.iter(|| {
            let mut est = 0.0f64;
            for &(a, _, _, _) in &pairs {
                est += (f64::from(a) - est) / 8.0;
            }
            black_box(est)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
