//! Real-engine throughput: frames/second through the full producer →
//! SPSC ring → DWCS scheduler thread → sink pipeline (work-conserving, so
//! this measures machinery, not pacing).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dwcs::scheduler::Pacing;
use dwcs::StreamQos;
use nistream_core::engine::{MediaServer, SinkKind};
use std::hint::black_box;
use std::time::Duration;

fn drain(server: &MediaServer, expect: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let stats_done = server.collected().len() as u64 >= expect;
        if stats_done || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_rt");
    g.sample_size(10);
    const FRAMES: u64 = 5_000;
    g.throughput(Throughput::Elements(FRAMES));
    g.bench_function("one_stream_5k_frames", |b| {
        b.iter(|| {
            let server = MediaServer::builder()
                .pool(512, 2048)
                .ring_capacity(512)
                .pacing(Pacing::WorkConserving)
                .sink(SinkKind::Collect)
                .start()
                .unwrap();
            let mut s = server.open_stream(StreamQos::new(1_000_000, 2, 8)).unwrap();
            let payload = [0u8; 512];
            let mut pushed = 0u64;
            while pushed < FRAMES {
                match s.send(&payload) {
                    Ok(()) => pushed += 1,
                    Err(_) => std::thread::yield_now(),
                }
            }
            drain(&server, FRAMES);
            let n = server.collected().len();
            server.shutdown();
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
