//! Discrete-event kernel throughput: how many simulated events per second
//! the experiment substrate sustains.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simkit::{Engine, SimDuration};
use std::hint::black_box;

struct World {
    fired: u64,
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_kernel");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("schedule_fire_100k", |b| {
        b.iter(|| {
            let mut eng: Engine<World> = Engine::new();
            let mut w = World { fired: 0 };
            fn tick(w: &mut World, eng: &mut Engine<World>) {
                w.fired += 1;
                if w.fired < 100_000 {
                    eng.schedule_in(SimDuration::from_nanos(w.fired % 977 + 1), tick);
                }
            }
            eng.schedule_in(SimDuration::from_nanos(1), tick);
            eng.run(&mut w);
            black_box(w.fired)
        })
    });
    g.sample_size(10);
    g.bench_function("calendar_heavy_10k_pending", |b| {
        b.iter(|| {
            let mut eng: Engine<World> = Engine::new();
            let mut w = World { fired: 0 };
            for i in 0..10_000u64 {
                eng.schedule_in(SimDuration::from_nanos(i * 31 % 100_000 + 1), |w: &mut World, _| {
                    w.fired += 1;
                });
            }
            eng.run(&mut w);
            black_box(w.fired)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
