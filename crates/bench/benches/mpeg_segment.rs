//! The MPEG segmentation program's throughput: encoding (synthesis) and
//! start-code scanning over a ~1.5 Mb/s stream.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mpeg1::{EncoderConfig, Segmenter, SyntheticEncoder};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (bytes, truth) = SyntheticEncoder::new(EncoderConfig::default()).encode(300);
    let mut g = c.benchmark_group("mpeg_segment");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("segment_300_frames", |b| {
        b.iter(|| {
            let frames = Segmenter::new(black_box(&bytes)).segment_all().unwrap();
            assert_eq!(frames.len(), truth.len());
            black_box(frames.len())
        })
    });
    g.bench_function("encode_300_frames", |b| {
        b.iter(|| {
            let (out, _) = SyntheticEncoder::new(EncoderConfig::default()).encode(300);
            black_box(out.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
