//! Figure 4(b)'s synchronization-free circular buffer: single-thread
//! ping-pong and cross-thread streaming throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use dwcs::ring::SpscRing;
use std::hint::black_box;
use std::thread;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("spsc_ring");

    g.bench_function("push_pop_same_thread", |b| {
        let (mut tx, mut rx) = SpscRing::with_capacity::<u64>(1024);
        b.iter(|| {
            for i in 0..512u64 {
                tx.push(i).unwrap();
            }
            let mut acc = 0u64;
            while let Some(v) = rx.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });

    g.sample_size(10);
    g.bench_function("cross_thread_100k", |b| {
        b.iter(|| {
            let (mut tx, mut rx) = SpscRing::with_capacity::<u64>(256);
            let producer = thread::spawn(move || {
                let mut next = 0u64;
                while next < 100_000 {
                    if tx.push(next).is_ok() {
                        next += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            });
            let mut got = 0u64;
            while got < 100_000 {
                if rx.pop().is_some() {
                    got += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            producer.join().unwrap();
            black_box(got)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
