//! Deterministic parallel sweep runner.
//!
//! Every figure reproduction is a sweep of *independent* simulation cells
//! (load level × placement × seed): each cell seeds its own [`simkit`]
//! engine and shares no state with its neighbours, so the cells can run on
//! any thread in any order without perturbing a single byte of output.
//! [`par_sweep`] exploits that: it fans the cells across OS threads and
//! hands the results back **in cell order**, so a caller that computes
//! first and prints second emits output byte-identical to the sequential
//! loop it replaced.
//!
//! # Determinism argument
//!
//! * Cells are `FnOnce` closures over owned/`Copy` inputs — nothing shared,
//!   nothing mutable across cells.
//! * Cells are pre-striped round-robin over the workers (`cell i` → worker
//!   `i % threads`), so *which* thread runs a cell is a pure function of
//!   the cell index and the thread count — there is no racy work-stealing
//!   queue. (The vendored `crossbeam` channel shim is single-consumer, so
//!   a shared job queue was never an option anyway.)
//! * Results travel back as `(index, value)` pairs on one channel and are
//!   placed into a slot vector by index; arrival order is irrelevant.
//! * With `threads == 1` (or one cell) the cells run inline on the calling
//!   thread in order — the reference behaviour the parallel path must, and
//!   does, reproduce byte-for-byte (see `tests/par_sweep_gate.rs`).
//!
//! Thread count comes from `NISTREAM_SWEEP_THREADS` when set, else the
//! machine's available parallelism; it is a *performance* knob only —
//! results are identical at every value.

use crossbeam::channel;

/// One independent unit of sweep work, boxed so heterogeneous call sites
/// (traced/untraced runs, different load levels) fit one sweep.
pub type Cell<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Number of worker threads a sweep will use: `NISTREAM_SWEEP_THREADS`
/// when set to a positive integer, else `std::thread::available_parallelism`.
pub fn sweep_threads() -> usize {
    if let Ok(v) = std::env::var("NISTREAM_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("NISTREAM_SWEEP_THREADS={v:?} is not a positive integer; using default");
    }
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// Run independent cells across [`sweep_threads`] OS threads, returning
/// their results in cell order.
pub fn par_sweep<T: Send>(cells: Vec<Cell<'_, T>>) -> Vec<T> {
    par_sweep_with(sweep_threads(), cells)
}

/// [`par_sweep`] with an explicit thread count (the byte-identity gate
/// test runs the same sweep at 1 and N threads and diffs the results).
pub fn par_sweep_with<T: Send>(threads: usize, cells: Vec<Cell<'_, T>>) -> Vec<T> {
    let threads = threads.min(cells.len());
    if threads <= 1 {
        // Reference path: run inline, in order, on the calling thread.
        return cells.into_iter().map(|cell| cell()).collect();
    }
    let n = cells.len();

    // Pre-stripe cells round-robin so cell→thread assignment is a pure
    // function of (index, threads), not of runtime timing.
    let mut stripes: Vec<Vec<(usize, Cell<'_, T>)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, cell) in cells.into_iter().enumerate() {
        stripes[i % threads].push((i, cell));
    }

    let (tx, rx) = channel::unbounded::<(usize, T)>();
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for stripe in stripes {
            let tx = tx.clone();
            scope.spawn(move || {
                for (i, cell) in stripe {
                    // The receiver lives past the workers; send only fails
                    // if the main thread is already unwinding.
                    let _ = tx.send((i, cell()));
                }
            });
        }
        drop(tx);
        for _ in 0..n {
            // `recv` errors only if a worker panicked and dropped its
            // sender; panic here and let the scope propagate the cause.
            let (i, value) = rx.recv().expect("sweep worker panicked");
            out[i] = Some(value);
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every cell index reported exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(n: usize) -> Vec<Cell<'static, usize>> {
        (0..n)
            .map(|i| -> Cell<'static, usize> { Box::new(move || i * i) })
            .collect()
    }

    #[test]
    fn results_come_back_in_cell_order() {
        for threads in [1, 2, 3, 7, 64] {
            let got = par_sweep_with(threads, squares(23));
            let want: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_cell_sweeps() {
        assert!(par_sweep_with(4, squares(0)).is_empty());
        assert_eq!(par_sweep_with(4, squares(1)), vec![0]);
    }

    #[test]
    fn cells_may_borrow_from_the_caller() {
        let labels = ["a", "bb", "ccc"];
        let cells: Vec<Cell<'_, usize>> = labels
            .iter()
            .map(|l| -> Cell<'_, usize> { Box::new(|| l.len()) })
            .collect();
        assert_eq!(par_sweep_with(2, cells), vec![1, 2, 3]);
    }

    #[test]
    fn parallel_matches_sequential_for_stateful_cells() {
        // Each cell runs its own tiny simulation; 1-thread and N-thread
        // sweeps must agree exactly.
        let build = || -> Vec<Cell<'static, u64>> {
            (0..8u64)
                .map(|seed| -> Cell<'static, u64> {
                    Box::new(move || {
                        let mut rng = simkit::Pcg32::new(seed, 54);
                        (0..1000).map(|_| rng.next_u32() as u64).sum()
                    })
                })
                .collect()
        };
        assert_eq!(par_sweep_with(1, build()), par_sweep_with(5, build()));
    }
}
