//! Figure 8 — host-based scheduler: queuing delay vs frames sent under
//! load.
//!
//! Paper: delay grows with frame number to ~10 000 ms unloaded; +~2 s at
//! 45 %; up to ~30 000 ms (3x) at 60 %.

use nistream_bench::{host_sweep, level_header, qdelay_head, render_qdelay, trace_path, write_trace, RUN_SECS};

fn main() {
    let trace = trace_path();
    println!("Figure 8: Queuing Delay vs Frames Sent with Load Variation (host-based DWCS)\n");
    let mut captures = Vec::new();
    // Independent cells: simulate the three levels in parallel, print in
    // level order.
    for (level, r) in host_sweep(RUN_SECS, trace.is_some()) {
        level_header(level);
        for s in &r.streams {
            // The paper's Figure 8 plots the first ~300 frames.
            print!("{}", render_qdelay(&s.name, qdelay_head(&s.qdelay, 300), 6));
        }
        println!();
        captures.push((level.label(), r.trace));
    }
    println!("paper: unloaded reaches ~10 000 ms; 45 % adds ~2 000 ms; 60 % reaches ~30 000 ms");
    if let Some(p) = trace {
        let runs: Vec<_> = captures.iter().map(|(l, c)| (*l, c)).collect();
        write_trace(&p, &runs);
    }
}
