//! Figure 8 — host-based scheduler: queuing delay vs frames sent under
//! load.
//!
//! Paper: delay grows with frame number to ~10 000 ms unloaded; +~2 s at
//! 45 %; up to ~30 000 ms (3x) at 60 %.

use nistream_bench::{host_run, level_header, qdelay_head, render_qdelay, LoadLevel, RUN_SECS};

fn main() {
    println!("Figure 8: Queuing Delay vs Frames Sent with Load Variation (host-based DWCS)\n");
    for level in [LoadLevel::None, LoadLevel::Avg45, LoadLevel::Avg60] {
        let r = host_run(level, RUN_SECS);
        level_header(level);
        for s in &r.streams {
            // The paper's Figure 8 plots the first ~300 frames.
            print!("{}", render_qdelay(&s.name, qdelay_head(&s.qdelay, 300), 6));
        }
        println!();
    }
    println!("paper: unloaded reaches ~10 000 ms; 45 % adds ~2 000 ms; 60 % reaches ~30 000 ms");
}
