//! Event-executive throughput: the timing-wheel [`simkit::Engine`] vs the
//! retired binary-heap executive ([`simkit::HeapEngine`], kept as the
//! differential oracle and as this benchmark's baseline).
//!
//! Each scenario seeds a population of self-rescheduling timers and fires
//! a fixed number of events through both executives, measuring fired
//! events per wall-clock second. Scenarios cover the wheel's distinct code
//! paths: level-0 churn, multi-level cascading, same-instant FIFO bursts,
//! cancel-heavy schedules, and deltas beyond the wheel horizon (overflow
//! heap).
//!
//! Emits `BENCH_engine.json` (schema `nistream-bench/engine/v1`) at the
//! repository root: median-of-reps events/sec per scenario per executive.
//!
//! Flags: `--quick` (CI smoke: fewer events/reps, same schema), `--check`
//! (validate the existing document and exit).

use nistream_bench::benchout::{check_flag, median, quick_flag, run_check, write_doc};
use simkit::{Engine, HeapEngine, Pcg32, SimDuration, SimTime};
use std::fmt::Write as _;
use std::time::Instant;

const FILE: &str = "BENCH_engine.json";
const SCHEMA: &str = "nistream-bench/engine/v1";
const REQUIRED_KEYS: [&str; 9] = [
    "schema",
    "mode",
    "reps",
    "events_per_rep",
    "scenarios",
    "name",
    "heap_eps",
    "wheel_eps",
    "speedup",
];

/// What the fired timers do.
#[derive(Clone, Copy)]
enum Kind {
    /// Every fire schedules one successor.
    Churn,
    /// Every fire schedules two successors and cancels one of them.
    CancelHeavy,
}

struct Scenario {
    name: &'static str,
    kind: Kind,
    /// Initial timer population.
    pending: u32,
    /// Reschedule deltas are uniform in `(0, span_ns]` …
    span_ns: u64,
    /// … rounded up to a multiple of this (1 ⇒ no rounding; 1 ms ⇒ many
    /// exactly-simultaneous events exercising FIFO order).
    quantum_ns: u64,
    seed: u64,
}

/// The scenario set: one per wheel code path.
const SCENARIOS: [Scenario; 5] = [
    // Deltas within one level-0 rotation (≤ ~1 ms).
    Scenario {
        name: "churn_short",
        kind: Kind::Churn,
        pending: 4096,
        span_ns: 1_000_000,
        quantum_ns: 1,
        seed: 11,
    },
    // Deltas up to 400 ms: entries land on levels 1–2 and cascade down.
    Scenario {
        name: "churn_wide",
        kind: Kind::Churn,
        pending: 4096,
        span_ns: 400_000_000,
        quantum_ns: 1,
        seed: 12,
    },
    // Whole-ms deltas: thousands of events per instant, FIFO-ordered.
    Scenario {
        name: "same_instant_bursts",
        kind: Kind::Churn,
        pending: 2048,
        span_ns: 4_000_000,
        quantum_ns: 1_000_000,
        seed: 13,
    },
    // Two schedules + one cancel per fire: slot recycling under churn.
    Scenario {
        name: "cancel_heavy",
        kind: Kind::CancelHeavy,
        pending: 2048,
        span_ns: 2_000_000,
        quantum_ns: 1,
        seed: 14,
    },
    // Deltas up to 120 s — beyond the ~68.7 s wheel horizon, so a steady
    // fraction of entries detours through the overflow heap.
    Scenario {
        name: "far_horizon",
        kind: Kind::Churn,
        pending: 1024,
        span_ns: 120_000_000_000,
        quantum_ns: 1,
        seed: 15,
    },
];

/// Per-run state the timers draw their reschedule deltas from.
struct World {
    rng: Pcg32,
    span_ns: u64,
    quantum_ns: u64,
}

impl World {
    fn new(scn: &Scenario) -> World {
        World {
            rng: Pcg32::new(scn.seed, 0xbe0c),
            span_ns: scn.span_ns,
            quantum_ns: scn.quantum_ns,
        }
    }

    fn delta(&mut self) -> SimDuration {
        let wide = (u64::from(self.rng.next_u32()) << 32) | u64::from(self.rng.next_u32());
        let raw = wide % self.span_ns;
        let ns = (raw / self.quantum_ns + 1) * self.quantum_ns;
        SimDuration::from_nanos(ns)
    }
}

/// Generate one driver per executive type (the two engines expose the same
/// API but are distinct types).
macro_rules! driver {
    ($run:ident, $engine:ty) => {
        fn $run(scn: &Scenario, events: u64) -> f64 {
            type E = $engine;
            fn tick(w: &mut World, e: &mut E) {
                let dt = w.delta();
                e.schedule_in(dt, tick);
            }
            fn tick_cancel(w: &mut World, e: &mut E) {
                let dt = w.delta();
                let victim = e.schedule_in(w.delta(), |_: &mut World, _: &mut E| {});
                e.cancel(victim);
                e.schedule_in(dt, tick_cancel);
            }
            let mut w = World::new(scn);
            let mut e = <E>::new();
            for i in 0..scn.pending {
                // Knuth-hash the index for a uniform initial spread.
                let at = 1 + u64::from(i).wrapping_mul(2_654_435_761) % scn.span_ns;
                match scn.kind {
                    Kind::Churn => e.schedule_at(SimTime::from_nanos(at), tick),
                    Kind::CancelHeavy => e.schedule_at(SimTime::from_nanos(at), tick_cancel),
                };
            }
            // analysis: allow(sim-determinism) reason="wall clock is the quantity being measured"
            let t0 = Instant::now();
            let fired = e.run_steps(&mut w, events);
            let elapsed = t0.elapsed().as_secs_f64();
            assert_eq!(fired, events, "executive ran dry mid-measurement");
            events as f64 / elapsed
        }
    };
}

driver!(run_wheel, Engine<World>);
driver!(run_heap, HeapEngine<World>);

fn main() {
    if check_flag() {
        run_check(FILE, SCHEMA, &REQUIRED_KEYS);
    }
    let quick = quick_flag();
    let (events, reps) = if quick { (30_000u64, 3usize) } else { (300_000, 5) };
    let mode = if quick { "quick" } else { "full" };

    println!("bench_engine: {mode} mode, {events} events/rep, {reps} reps, median reported\n");
    println!(
        "{:<22} {:>14} {:>14} {:>9}",
        "scenario", "heap ev/s", "wheel ev/s", "speedup"
    );

    let mut rows = String::new();
    for scn in &SCENARIOS {
        // Alternate executives rep by rep so slow drift (thermal, noisy
        // neighbours) biases neither side.
        let mut heap_eps = Vec::with_capacity(reps);
        let mut wheel_eps = Vec::with_capacity(reps);
        for _ in 0..reps {
            heap_eps.push(run_heap(scn, events));
            wheel_eps.push(run_wheel(scn, events));
        }
        let (h, w) = (median(heap_eps), median(wheel_eps));
        println!("{:<22} {:>14.0} {:>14.0} {:>8.2}x", scn.name, h, w, w / h);
        let _ = write!(
            rows,
            "{}    {{ \"name\": \"{}\", \"pending\": {}, \"span_ns\": {}, \"heap_eps\": {:.0}, \"wheel_eps\": {:.0}, \"speedup\": {:.3} }}",
            if rows.is_empty() { "" } else { ",\n" },
            scn.name,
            scn.pending,
            scn.span_ns,
            h,
            w,
            w / h
        );
    }

    let body = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"mode\": \"{mode}\",\n  \"reps\": {reps},\n  \"events_per_rep\": {events},\n  \"scenarios\": [\n{rows}\n  ]\n}}\n"
    );
    let path = write_doc(FILE, &body);
    println!("\nwrote {}", path.display());
}
