//! Table 3 — descriptors in the i960 "hardware queue" MMIO registers
//! (fixed point, data cache enabled).
//!
//! Paper values (µs): total 14569.68, avg 72.48/96.48, w/o scheduler
//! 4199.04 / 27.80 — "comparable to the results in Table 2".

use hwsim::i960::DescriptorStore;
use nistream_bench::{format_table, micro_rows, trace_path, write_trace, TraceCapture, TraceRing, TRACE_CAP};
use serversim::micro::{self, MicroConfig};

fn main() {
    let trace = trace_path();
    let (hw, captures) = if trace.is_some() {
        let mut ring = TraceRing::with_capacity(TRACE_CAP);
        let hw = micro::run_traced(
            &MicroConfig {
                cache: true,
                store: DescriptorStore::HwQueueRegs,
                ..MicroConfig::default()
            },
            &mut ring,
        );
        (hw, vec![("hw-queue", TraceCapture::from_ring(&mut ring))])
    } else {
        (micro::table3(), Vec::new())
    };
    let (_, pinned) = micro::table2();
    print!(
        "{}",
        format_table(
            "Table 3: Scheduler Microbenchmarks (Hardware Queues, Data Cache Enabled)",
            &["Microbenchmark", "Fixed Point (uSecs)"],
            &micro_rows(&[&hw]),
        )
    );
    println!(
        "\npinned-memory (Table 2) avg: {:.2} us vs hardware-queue avg: {:.2} us",
        pinned.avg_sched_us, hw.avg_sched_us
    );
    println!("paper: \"the cost of looping through descriptors in local memory-mapped register");
    println!("space or in pinned memory pages for the i960 RD appears to be comparable\"");
    if let Some(p) = trace {
        let runs: Vec<_> = captures.iter().map(|(l, c)| (*l, c)).collect();
        write_trace(&p, &runs);
    }
}
