//! Table 3 — descriptors in the i960 "hardware queue" MMIO registers
//! (fixed point, data cache enabled).
//!
//! Paper values (µs): total 14569.68, avg 72.48/96.48, w/o scheduler
//! 4199.04 / 27.80 — "comparable to the results in Table 2".

use nistream_bench::{format_table, micro_rows};
use serversim::micro;

fn main() {
    let hw = micro::table3();
    let (_, pinned) = micro::table2();
    print!(
        "{}",
        format_table(
            "Table 3: Scheduler Microbenchmarks (Hardware Queues, Data Cache Enabled)",
            &["Microbenchmark", "Fixed Point (uSecs)"],
            &micro_rows(&[&hw]),
        )
    );
    println!(
        "\npinned-memory (Table 2) avg: {:.2} us vs hardware-queue avg: {:.2} us",
        pinned.avg_sched_us, hw.avg_sched_us
    );
    println!("paper: \"the cost of looping through descriptors in local memory-mapped register");
    println!("space or in pinned memory pages for the i960 RD appears to be comparable\"");
}
