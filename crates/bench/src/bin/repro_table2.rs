//! Table 2 — Scheduler microbenchmarks, data cache ENABLED.
//!
//! Paper values (µs): software FP — 17398.56 / 115.20 / 4776.48 / 31.40;
//! fixed point — 14295.60 / 94.60 / 4195.68 / 27.78. The cache saves
//! ~14.47 (FP) and ~13.88 (fixed) µs per frame over Table 1.

use fixedpt::ops::MathMode;
use nistream_bench::{format_table, micro_rows, trace_path, write_trace, TraceCapture, TraceRing, TRACE_CAP};
use serversim::micro::{self, MicroConfig};

fn main() {
    let trace = trace_path();
    let (float_off, fixed_off) = micro::table1();
    let (float, fixed, captures) = if trace.is_some() {
        let mut rf = TraceRing::with_capacity(TRACE_CAP);
        let mut rx = TraceRing::with_capacity(TRACE_CAP);
        let float = micro::run_traced(
            &MicroConfig {
                math: MathMode::SoftFloat,
                cache: true,
                ..MicroConfig::default()
            },
            &mut rf,
        );
        let fixed = micro::run_traced(
            &MicroConfig {
                cache: true,
                ..MicroConfig::default()
            },
            &mut rx,
        );
        let caps = vec![
            ("software-fp cached", TraceCapture::from_ring(&mut rf)),
            ("fixed-point cached", TraceCapture::from_ring(&mut rx)),
        ];
        (float, fixed, caps)
    } else {
        let (float, fixed) = micro::table2();
        (float, fixed, Vec::new())
    };
    print!(
        "{}",
        format_table(
            &format!(
                "Table 2: Scheduler Microbenchmarks (Data Cache Enabled), {} MPEG-1 frames",
                fixed.frames
            ),
            &["Microbenchmark", "Software FP (uSecs)", "Fixed Point (uSecs)"],
            &micro_rows(&[&float, &fixed]),
        )
    );
    println!(
        "\ncache saving per frame: FP {:.2} us (paper ~14.47), fixed {:.2} us (paper ~13.88)",
        float_off.avg_sched_us - float.avg_sched_us,
        fixed_off.avg_sched_us - fixed.avg_sched_us
    );
    println!(
        "scheduler overhead, fixed point: {:.2} us (paper ~66.82)",
        fixed.overhead_us()
    );
    if let Some(p) = trace {
        let runs: Vec<_> = captures.iter().map(|(l, c)| (*l, c)).collect();
        write_trace(&p, &runs);
    }
}
