//! Table 1 — Scheduler microbenchmarks, data cache DISABLED.
//!
//! Paper values (µs): software FP — total 19580.88, avg 129.67, w/o
//! scheduler 5210.88 / 34.6; fixed point — 16425.36 / 108.48 / 4583.28 /
//! 30.35. Run: `cargo run --release -p nistream-bench --bin repro_table1`.

use fixedpt::ops::MathMode;
use nistream_bench::{format_table, micro_rows, trace_path, write_trace, TraceCapture, TraceRing, TRACE_CAP};
use serversim::micro::{self, MicroConfig};

fn main() {
    let trace = trace_path();
    let (float, fixed, captures) = if trace.is_some() {
        let mut rf = TraceRing::with_capacity(TRACE_CAP);
        let mut rx = TraceRing::with_capacity(TRACE_CAP);
        let float = micro::run_traced(
            &MicroConfig {
                math: MathMode::SoftFloat,
                ..MicroConfig::default()
            },
            &mut rf,
        );
        let fixed = micro::run_traced(&MicroConfig::default(), &mut rx);
        let caps = vec![
            ("software-fp", TraceCapture::from_ring(&mut rf)),
            ("fixed-point", TraceCapture::from_ring(&mut rx)),
        ];
        (float, fixed, caps)
    } else {
        let (float, fixed) = micro::table1();
        (float, fixed, Vec::new())
    };
    print!(
        "{}",
        format_table(
            &format!(
                "Table 1: Scheduler Microbenchmarks (Data Cache Disabled), {} MPEG-1 frames",
                fixed.frames
            ),
            &["Microbenchmark", "Software FP (uSecs)", "Fixed Point (uSecs)"],
            &micro_rows(&[&float, &fixed]),
        )
    );
    println!(
        "\nscheduler overhead (avg with - avg without): FP {:.2} us, fixed {:.2} us",
        float.overhead_us(),
        fixed.overhead_us()
    );
    println!("paper: FP ~95 us, fixed ~78 us; fixed-point advantage ~20 us/decision");
    if let Some(p) = trace {
        let runs: Vec<_> = captures.iter().map(|(l, c)| (*l, c)).collect();
        write_trace(&p, &runs);
    }
}
