//! Design-space ablations beyond the paper's tables:
//!
//! 1. Offload-target comparison — the same DWCS decision priced on the
//!    DVCM lineage's co-processors and hosts.
//! 2. Scheduler/producer NI split for a 6-slot node (§6's "careful
//!    balance").
//! 3. Shared-PCI-bus contention sweep (producer NIs vs delivered
//!    throughput, bus utilization, DMA wait).
//!
//! The three sections are independent: each renders to a string in its own
//! sweep cell and the strings print in section order.
//!
//! Run: `cargo run --release -p nistream-bench --bin ablation_report`

use fixedpt::ops::MathMode;
use hwsim::profiles::{decision_us, ALL};
use nistream_bench::{format_table, par_sweep, trace_path, write_trace, Cell, TraceCapture};
use serversim::cluster::{node_capacity, sweep_ni_split, NodeConfig};
use serversim::pcibus_sim;
use std::fmt::Write as _;

/// Ablation 1: offload targets.
fn offload_targets() -> String {
    let rows: Vec<Vec<String>> = ALL
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                format!("{:.1}", decision_us(p, MathMode::FixedPoint, 40)),
                format!("{:.1}", decision_us(p, MathMode::SoftFloat, 40)),
                if p.has_fpu { "yes" } else { "no" }.into(),
            ]
        })
        .collect();
    let mut out = format_table(
        "Ablation 1: DWCS decision cost across offload targets (40 descriptor touches)",
        &["Target", "fixed-point (us)", "float (us)", "FPU"],
        &rows,
    );
    let _ = writeln!(
        out,
        "paper: host ~50 us vs i960RD ~65 us — \"comparable, although the i960RD"
    );
    let _ = writeln!(
        out,
        "is a much slower processor\"; fixed-point is what closes the gap.\n"
    );
    out
}

/// Ablation 2: scheduler/producer NI split.
fn ni_split() -> String {
    let node = NodeConfig::default();
    let cap = node_capacity(&node);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation 2: scheduler/producer NI balance (6-slot node, 260 kb/s streams)"
    );
    let _ = writeln!(
        out,
        "  per-NI limits: scheduler {} | producer {} | PCI {}",
        cap.streams_per_scheduler_ni, cap.streams_per_producer_ni, cap.pci_stream_limit
    );
    for (sched, streams) in sweep_ni_split(6, &node) {
        let _ = writeln!(
            out,
            "  {sched} scheduler / {} producer NIs -> {streams:>4} streams",
            6 - sched
        );
    }
    let _ = writeln!(out);
    out
}

/// Ablation 3: shared-PCI-bus contention.
fn bus_contention() -> String {
    let rows: Vec<Vec<String>> = pcibus_sim::sweep(&[1, 2, 4, 8, 16])
        .into_iter()
        .map(|(p, r)| {
            vec![
                p.to_string(),
                format!("{}", r.delivered),
                format!("{:.2}", r.throughput_bps / 1e6),
                format!("{:.1}", r.bus_utilization * 100.0),
                format!("{:.3}", r.mean_dma_wait_ms),
                format!("{:.1}", r.sched_ni_utilization * 100.0),
            ]
        })
        .collect();
    let mut out = format_table(
        "Ablation 3: shared-PCI contention, 5 s runs (8 x 30fps streams per producer NI)",
        &[
            "producer NIs",
            "delivered",
            "Mb/s",
            "bus util %",
            "DMA wait ms",
            "sched-NI util %",
        ],
        &rows,
    );
    let _ = writeln!(
        out,
        "the bus never becomes the bottleneck — the scheduler NI's CPU+wire"
    );
    let _ = writeln!(
        out,
        "budget saturates first, which is why peer-to-peer offload scales (§4.2.2)."
    );
    out
}

fn main() {
    let sections: Vec<Cell<'static, String>> =
        vec![Box::new(offload_targets), Box::new(ni_split), Box::new(bus_contention)];
    for section in par_sweep(sections) {
        print!("{section}");
    }
    if let Some(p) = trace_path() {
        // The ablations price decisions analytically (no service core
        // runs), so the document carries a labeled run with no events.
        write_trace(&p, &[("ablations", &TraceCapture::default())]);
    }
}
