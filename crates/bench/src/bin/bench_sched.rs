//! Scheduling-decision throughput across the five `dwcs::repr` schedule
//! representations (§3.1.1's data-structure experimentation), at stream
//! populations from 64 to 16384.
//!
//! Each measurement enqueues a fixed total frame budget across `n` streams
//! and times the drain loop alone (`schedule_next` until the schedule is
//! empty), reporting scheduling decisions per wall-clock second.
//!
//! Emits `BENCH_sched.json` (schema `nistream-bench/sched/v1`) at the
//! repository root: median-of-reps decisions/sec per (repr, streams) cell.
//!
//! Flags: `--quick` (CI smoke: smaller budget/reps, same schema),
//! `--check` (validate the existing document and exit).

use dwcs::{
    BTreeRepr, CalendarQueue, DualHeap, DwcsScheduler, FrameDesc, FrameKind, LinearScan, ScheduleRepr, SortedList,
    StreamId, StreamQos,
};
use nistream_bench::benchout::{check_flag, median, quick_flag, run_check, write_doc};
use std::fmt::Write as _;
use std::time::Instant;

const FILE: &str = "BENCH_sched.json";
const SCHEMA: &str = "nistream-bench/sched/v1";
const REQUIRED_KEYS: [&str; 7] = [
    "schema",
    "mode",
    "reps",
    "frame_budget",
    "results",
    "repr",
    "decisions_per_sec",
];

/// Stream populations (the paper's NI holds tens of streams; the upper
/// sizes probe the asymptotics of each structure).
const SIZES: [u32; 5] = [64, 256, 1024, 4096, 16384];

/// One timed drain: enqueue `frames_per_stream` frames on each of
/// `streams` streams, then clock `schedule_next` until the schedule is
/// empty. Returns decisions per second.
fn drive<R: ScheduleRepr>(repr: R, streams: u32, frames_per_stream: u64) -> f64 {
    let mut s = DwcsScheduler::new(repr);
    let sids: Vec<StreamId> = (0..streams)
        .map(|i| s.add_stream(StreamQos::new(1_000_000 + u64::from(i) * 7_919, 2, 8)))
        .collect();
    for seq in 0..frames_per_stream {
        for (i, &sid) in sids.iter().enumerate() {
            s.enqueue(
                sid,
                FrameDesc::new(sid, seq, 1000, FrameKind::P),
                seq * 1_000 + i as u64,
            );
        }
    }
    let mut decisions = 0u64;
    let mut t = 0u64;
    // analysis: allow(sim-determinism) reason="wall clock is the quantity being measured"
    let t0 = Instant::now();
    loop {
        let d = s.schedule_next(t);
        decisions += 1;
        if d.frame.is_none() {
            break;
        }
        t += 10_000;
    }
    decisions as f64 / t0.elapsed().as_secs_f64()
}

fn measure<R: ScheduleRepr>(make: impl Fn() -> R, streams: u32, frames_per_stream: u64, reps: usize) -> f64 {
    median((0..reps).map(|_| drive(make(), streams, frames_per_stream)).collect())
}

fn main() {
    if check_flag() {
        run_check(FILE, SCHEMA, &REQUIRED_KEYS);
    }
    let quick = quick_flag();
    let (budget, reps) = if quick { (4_096u64, 3usize) } else { (16_384, 5) };
    let mode = if quick { "quick" } else { "full" };

    println!("bench_sched: {mode} mode, ~{budget} frames/rep, {reps} reps, median decisions/sec\n");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "streams", "linear-scan", "sorted-list", "dual-heap", "btree", "calendar-q"
    );

    let mut rows = String::new();
    let mut emit = |repr: &str, streams: u32, dps: f64| {
        let _ = write!(
            rows,
            "{}    {{ \"repr\": \"{repr}\", \"streams\": {streams}, \"decisions_per_sec\": {dps:.0} }}",
            if rows.is_empty() { "" } else { ",\n" },
        );
    };
    for &n in &SIZES {
        let fps = (budget / u64::from(n)).max(1);
        let cells = [
            ("linear-scan", measure(|| LinearScan::new(n as usize), n, fps, reps)),
            ("sorted-list", measure(SortedList::new, n, fps, reps)),
            ("dual-heap", measure(|| DualHeap::new(n as usize), n, fps, reps)),
            ("btree", measure(BTreeRepr::new, n, fps, reps)),
            (
                "calendar-queue",
                measure(|| CalendarQueue::new(1_000_000, 32), n, fps, reps),
            ),
        ];
        println!(
            "{:<10} {:>14.0} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
            n, cells[0].1, cells[1].1, cells[2].1, cells[3].1, cells[4].1
        );
        for (repr, dps) in cells {
            emit(repr, n, dps);
        }
    }

    let body = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"mode\": \"{mode}\",\n  \"reps\": {reps},\n  \"frame_budget\": {budget},\n  \"results\": [\n{rows}\n  ]\n}}\n"
    );
    let path = write_doc(FILE, &body);
    println!("\nwrote {}", path.display());
}
