//! Figure 9 — NI bandwidth distribution snapshot: unaffected by system
//! load.
//!
//! Paper: the NI-based scheduler settles ~260 kbps per stream regardless
//! of host web load ("completely immune to web server loading").

use nistream_bench::{ni_sweep, render_series, stream_summary, trace_path, write_trace, RUN_SECS};

fn main() {
    let trace = trace_path();
    println!("Figure 9: NI Bandwidth Distribution Snapshot (NI-based DWCS, 60 % host web load)\n");
    let r = ni_sweep(RUN_SECS, trace.is_some());
    for s in &r.streams {
        let settle = s.bandwidth.settling_value(0.3).unwrap_or(0.0);
        println!("{}", stream_summary(s, "settling bandwidth", settle));
        print!("{}", render_series(&s.name, &s.bandwidth, "bps", 16));
    }
    if let Some(host) = &r.host {
        println!(
            "\n  host (web load only): avg util {:.1} %, peak {:.1} % — none of it visible above",
            host.avg_util, host.peak_util
        );
    }
    println!(
        "  NI mean scheduling decision: {:.1} us (paper: ~65 us on the 66 MHz i960RD)",
        r.mean_decision_us
    );
    println!("\npaper: ~260 kbps settling for s1, matching the unloaded host-based scheduler");
    if let Some(p) = trace {
        write_trace(&p, &[("ni 60% host web load", &r.trace)]);
    }
}
