//! Figure 7 — host-based scheduler: per-stream bandwidth vs time under
//! the three load levels.
//!
//! Paper: settles at ~250 kbps with no load; dips to 200 k and settles
//! ~230 k at 45 %; falls to ~100 k and settles below 125 k at 60 %.

use nistream_bench::{host_run, render_series, LoadLevel, RUN_SECS};

fn main() {
    // `--csv` dumps the full bandwidth traces for plotting.
    let csv = std::env::args().any(|a| a == "--csv");
    if !csv {
        println!("Figure 7: Bandwidth Variation with Load (host-based DWCS, streams s1 & s2)\n");
    }
    for level in [LoadLevel::None, LoadLevel::Avg45, LoadLevel::Avg60] {
        let r = host_run(level, RUN_SECS);
        if csv {
            for s in &r.streams {
                println!("# {} {}", level.label(), s.name);
                print!("{}", s.bandwidth.to_csv("bandwidth_bps"));
            }
            continue;
        }
        println!("--- {} ---", level.label());
        for s in &r.streams {
            // The paper's "settling bandwidth" reads off the loaded
            // window (load runs 15-80 s); report the 40-80 s mean.
            let loaded = s
                .bandwidth
                .mean_between(
                    simkit::SimTime::from_nanos(40_000_000_000),
                    simkit::SimTime::from_nanos(80_000_000_000),
                )
                .unwrap_or(0.0);
            println!(
                "  {}: bandwidth over 40-80 s {:>8.0} bps; sent {} dropped {} violations {}",
                s.name, loaded, s.sent, s.dropped, s.violations
            );
            print!("{}", render_series(&s.name, &s.bandwidth, "bps", 16));
        }
        println!();
    }
    if !csv {
        println!("paper: ~250k settle unloaded; ~230k @45 %; <125k @60 % (half of unloaded)");
    }
}
