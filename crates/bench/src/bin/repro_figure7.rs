//! Figure 7 — host-based scheduler: per-stream bandwidth vs time under
//! the three load levels.
//!
//! Paper: settles at ~250 kbps with no load; dips to 200 k and settles
//! ~230 k at 45 %; falls to ~100 k and settles below 125 k at 60 %.

use nistream_bench::{
    csv_flag, host_sweep, level_header, print_csv_block, render_series, stream_summary, trace_path, write_trace,
    RUN_SECS,
};

fn main() {
    // `--csv` dumps the full bandwidth traces for plotting; `--trace
    // <path>` additionally writes the scheduler event stream.
    let csv = csv_flag();
    let trace = trace_path();
    if !csv {
        println!("Figure 7: Bandwidth Variation with Load (host-based DWCS, streams s1 & s2)\n");
    }
    let mut captures = Vec::new();
    // Independent cells: simulate the three levels in parallel, print in
    // level order.
    for (level, r) in host_sweep(RUN_SECS, trace.is_some()) {
        if csv {
            for s in &r.streams {
                print_csv_block(&format!("{} {}", level.label(), s.name), &s.bandwidth, "bandwidth_bps");
            }
        } else {
            level_header(level);
            for s in &r.streams {
                // The paper's "settling bandwidth" reads off the loaded
                // window (load runs 15-80 s); report the 40-80 s mean.
                let loaded = s
                    .bandwidth
                    .mean_between(
                        simkit::SimTime::from_nanos(40_000_000_000),
                        simkit::SimTime::from_nanos(80_000_000_000),
                    )
                    .unwrap_or(0.0);
                println!("{}", stream_summary(s, "bandwidth over 40-80 s", loaded));
                print!("{}", render_series(&s.name, &s.bandwidth, "bps", 16));
            }
            println!();
        }
        captures.push((level.label(), r.trace));
    }
    if !csv {
        println!("paper: ~250k settle unloaded; ~230k @45 %; <125k @60 % (half of unloaded)");
    }
    if let Some(p) = trace {
        let runs: Vec<_> = captures.iter().map(|(l, c)| (*l, c)).collect();
        write_trace(&p, &runs);
    }
}
