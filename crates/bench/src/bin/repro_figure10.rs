//! Figure 10 — NI queuing delay snapshot: unaffected by system load.
//!
//! Paper: queuing delay grows linearly with frame number (the pre-loaded
//! file drains at stream rate); maximum ~11 000 ms for s1 vs the 10 000 ms
//! of the unloaded host-based case — and identical under host load.

use nistream_bench::{ni_sweep, qdelay_head, render_qdelay, trace_path, write_trace, RUN_SECS};

fn main() {
    let trace = trace_path();
    println!("Figure 10: NI Queuing Delay vs Frames Sent (NI-based DWCS, 60 % host web load)\n");
    let r = ni_sweep(RUN_SECS, trace.is_some());
    for s in &r.streams {
        // The paper's Figure 10 plots ~140 frames of a shorter snapshot;
        // we show the first 330 (the 11 s point of the linear ramp).
        let shown = qdelay_head(&s.qdelay, 330);
        print!("{}", render_qdelay(&s.name, shown, 6));
        if let Some(&(n, d)) = shown.last() {
            println!(
                "  {}: queuing delay {:.0} ms at frame {} (grows linearly at one period/frame)",
                s.name, d, n
            );
        }
    }
    println!("\npaper: linear growth, max ~11 000 ms (s1) — cf. 10 000 ms host-based unloaded;");
    println!("the series is bit-identical with and without host load (see niload tests)");
    if let Some(p) = trace {
        write_trace(&p, &[("ni 60% host web load", &r.trace)]);
    }
}
