//! Table 4 — Critical-path benchmarks: 1000-byte frame, disk to remote
//! client, averaged over 1000 transfers.
//!
//! Paper: Expt I (Path A) 1 ms (UFS) / 8 ms (VxWorks fs on host);
//! Expt II (Path C) 5.4 ms; Expt III (Path B) 5.415 ms
//! (4.2 disk + 1.2 net + 0.015 PCI).

use nistream_bench::{format_table, trace_path, write_trace, TraceCapture};
use serversim::paths::{self, PathConfig};

fn main() {
    let cfg = PathConfig::default();
    let a_ufs = paths::path_a_ufs(&cfg);
    let a_vx = paths::path_a_vxfs(&cfg);
    let c = paths::path_c(&cfg);
    let b = paths::path_b(&cfg);
    let row = |name: &str, p: &paths::PathBreakdown| {
        vec![
            name.to_string(),
            format!("{:.3}", p.total_ms),
            format!("{:.2}", p.disk_ms),
            format!("{:.2}", p.host_ms),
            format!("{:.3}", p.pci_ms),
            format!("{:.2}", p.net_ms),
        ]
    };
    print!(
        "{}",
        format_table(
            &format!(
                "Table 4: Critical Path Benchmarks ({}-byte frame, {} transfers)",
                cfg.frame_bytes, cfg.transfers
            ),
            &["Frame Transfer Path", "Total (ms)", "disk", "host CPU", "PCI", "net"],
            &[
                row("I   Disk-HostCPU-I/O Bus-Network (UFS)", &a_ufs),
                row("I   Disk-HostCPU-I/O Bus-Network (VxWorks fs)", &a_vx),
                row("II  NI Disk-NI CPU-Network (Path C)", &c),
                row("III Disk-I/O Bus-NI CPU-Network (Path B)", &b),
            ],
        )
    );
    println!("\npaper: 1(ufs)/8(VxWorks) | 5.4 | 5.415 (4.2disk + 1.2net + 0.015pci)");
    if let Some(p) = trace_path() {
        // The critical-path benchmarks never cross the DWCS service core,
        // so the document carries a labeled run with no events.
        write_trace(&p, &[("table4 critical paths", &TraceCapture::default())]);
    }
}
