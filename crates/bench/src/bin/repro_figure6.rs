//! Figure 6 — CPU utilization variation with server load.
//!
//! Paper: no-load run averages ~15 % with a ~35 % peak; the 45 % and 60 %
//! runs apply httperf load from ~15 s, with the 60 % run's sustained
//! phase exceeding 80 %.

use nistream_bench::{csv_flag, host_run, level_header, print_csv_block, render_series, LoadLevel, RUN_SECS};

fn main() {
    // `--csv` dumps the full traces for plotting instead of the summary.
    let csv = csv_flag();
    if !csv {
        println!("Figure 6: CPU Utilization Variation with Server Load ({RUN_SECS} s runs)\n");
    }
    for level in [LoadLevel::None, LoadLevel::Avg45, LoadLevel::Avg60] {
        let r = host_run(level, RUN_SECS);
        if csv {
            print_csv_block(level.label(), &r.cpu_util, "cpu_util_pct");
            continue;
        }
        level_header(level);
        println!(
            "  average utilization: {:>5.1} %   peak: {:>5.1} %",
            r.avg_util, r.peak_util
        );
        print!("{}", render_series("total CPU util", &r.cpu_util, "%", 20));
        println!();
    }
    if csv {
        return;
    }
    println!("paper: no-load avg ~15 % peak ~35 %; 45 % and 60 % average runs, the");
    println!("latter exceeding 80 % during its 40-80 s loaded window");
}
