//! Figure 6 — CPU utilization variation with server load.
//!
//! Paper: no-load run averages ~15 % with a ~35 % peak; the 45 % and 60 %
//! runs apply httperf load from ~15 s, with the 60 % run's sustained
//! phase exceeding 80 %.

use nistream_bench::{host_run, render_series, LoadLevel, RUN_SECS};

fn main() {
    // `--csv` dumps the full traces for plotting instead of the summary.
    let csv = std::env::args().any(|a| a == "--csv");
    if !csv {
        println!("Figure 6: CPU Utilization Variation with Server Load ({RUN_SECS} s runs)\n");
    }
    for level in [LoadLevel::None, LoadLevel::Avg45, LoadLevel::Avg60] {
        let r = host_run(level, RUN_SECS);
        if csv {
            println!("# {}", level.label());
            print!("{}", r.cpu_util.to_csv("cpu_util_pct"));
            continue;
        }
        println!("--- {} ---", level.label());
        println!(
            "  average utilization: {:>5.1} %   peak: {:>5.1} %",
            r.avg_util, r.peak_util
        );
        print!("{}", render_series("total CPU util", &r.cpu_util, "%", 20));
        println!();
    }
    if csv {
        return;
    }
    println!("paper: no-load avg ~15 % peak ~35 %; 45 % and 60 % average runs, the");
    println!("latter exceeding 80 % during its 40-80 s loaded window");
}
