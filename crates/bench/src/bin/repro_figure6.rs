//! Figure 6 — CPU utilization variation with server load.
//!
//! Paper: no-load run averages ~15 % with a ~35 % peak; the 45 % and 60 %
//! runs apply httperf load from ~15 s, with the 60 % run's sustained
//! phase exceeding 80 %.

use nistream_bench::{
    csv_flag, host_sweep, level_header, print_csv_block, render_series, trace_path, write_trace, RUN_SECS,
};

fn main() {
    // `--csv` dumps the full traces for plotting instead of the summary;
    // `--trace <path>` additionally writes the scheduler event stream.
    let csv = csv_flag();
    let trace = trace_path();
    if !csv {
        println!("Figure 6: CPU Utilization Variation with Server Load ({RUN_SECS} s runs)\n");
    }
    let mut captures = Vec::new();
    // The three load levels are independent cells: simulate in parallel,
    // then print in level order (stdout is byte-identical to a loop).
    for (level, r) in host_sweep(RUN_SECS, trace.is_some()) {
        if csv {
            print_csv_block(level.label(), &r.cpu_util, "cpu_util_pct");
        } else {
            level_header(level);
            println!(
                "  average utilization: {:>5.1} %   peak: {:>5.1} %",
                r.avg_util, r.peak_util
            );
            print!("{}", render_series("total CPU util", &r.cpu_util, "%", 20));
            println!();
        }
        captures.push((level.label(), r.trace));
    }
    if !csv {
        println!("paper: no-load avg ~15 % peak ~35 %; 45 % and 60 % average runs, the");
        println!("latter exceeding 80 % during its 40-80 s loaded window");
    }
    if let Some(p) = trace {
        let runs: Vec<_> = captures.iter().map(|(l, c)| (*l, c)).collect();
        write_trace(&p, &runs);
    }
}
