//! Table 5 — PCI card-to-card transfer benchmarks.
//!
//! Paper: MPEG file (773 665 bytes) DMA 11 673.84 µs / 66.27 MB/s;
//! PIO word read 3.6 µs; PIO word write 3.1 µs.

use nistream_bench::{format_table, trace_path, write_trace, TraceCapture};
use serversim::paths;

fn main() {
    let t = paths::table5();
    print!(
        "{}",
        format_table(
            "Table 5: PCI Card-to-Card Transfer Benchmarks",
            &["Benchmark", "Time (uSecs) / BW (MB/s)"],
            &[
                vec![
                    "MPEG File Transfer by DMA (773665 bytes)".into(),
                    format!("{:.2} / {:.2}", t.file_dma_us, t.file_dma_mbps)
                ],
                vec!["Memory Word Read (PIO)".into(), format!("{:.1}", t.pio_read_us)],
                vec!["Memory Word Write (PIO)".into(), format!("{:.1}", t.pio_write_us)],
            ],
        )
    );
    println!("\npaper: 11673.84 / 66.27 | 3.6 | 3.1");
    if let Some(p) = trace_path() {
        // The PCI transfer benchmarks never cross the DWCS service core,
        // so the document carries a labeled run with no events.
        write_trace(&p, &[("table5 pci transfers", &TraceCapture::default())]);
    }
}
