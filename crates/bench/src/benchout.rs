//! Shared plumbing for the `bench_engine` / `bench_sched` binaries: flag
//! parsing, median-of-reps reduction, and the stable-schema `BENCH_*.json`
//! documents they emit at the repository root.
//!
//! The documents are hand-rolled JSON with a fixed key set and key order
//! (`schema` first, then run parameters, then one row per measurement), so
//! downstream tooling can diff them across commits; only the measured
//! values change run to run. `validate_doc` is the CI smoke gate: it
//! re-reads an emitted document and checks the schema tag and every
//! required key are present.

use std::path::{Path, PathBuf};

/// `--quick` flag: CI smoke mode — fewer events and repetitions, same
/// schema and scenario set.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// `--check` flag: validate the existing document instead of re-measuring.
pub fn check_flag() -> bool {
    std::env::args().any(|a| a == "--check")
}

/// Median of an odd (or even: lower-middle-biased mean) number of reps.
pub fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty(), "median of no reps");
    xs.sort_by(|a, b| a.partial_cmp(b).expect("bench values are finite"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// The repository root (the `BENCH_*.json` destination), resolved from the
/// crate location so the binaries work from any working directory.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Write `body` to `<repo root>/<file_name>`, returning the path.
pub fn write_doc(file_name: &str, body: &str) -> PathBuf {
    let path = repo_root().join(file_name);
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    path
}

/// Validate an emitted document: the schema tag and every required key
/// must appear. Returns a human-readable error naming the first miss.
pub fn validate_doc(file_name: &str, schema: &str, required_keys: &[&str]) -> Result<(), String> {
    let path = repo_root().join(file_name);
    let body = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: {e} (run the bench first to emit it)", path.display()))?;
    let tag = format!("\"schema\": \"{schema}\"");
    if !body.contains(&tag) {
        return Err(format!("{file_name}: missing or wrong schema tag (want {tag})"));
    }
    for key in required_keys {
        if !body.contains(&format!("\"{key}\":")) {
            return Err(format!("{file_name}: required key \"{key}\" absent"));
        }
    }
    Ok(())
}

/// Exit path shared by the `--check` mode of both binaries.
pub fn run_check(file_name: &str, schema: &str, required_keys: &[&str]) -> ! {
    match validate_doc(file_name, schema, required_keys) {
        Ok(()) => {
            println!("{file_name}: schema ok ({schema})");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(vec![7.0]), 7.0);
    }

    #[test]
    fn repo_root_holds_the_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").exists());
    }

    #[test]
    fn validate_catches_missing_keys() {
        let err = validate_doc("Cargo.toml", "nope/v0", &[]).unwrap_err();
        assert!(err.contains("schema tag"));
    }
}
