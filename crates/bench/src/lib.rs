//! Shared drivers for the `repro_*` binaries.
//!
//! Each binary regenerates one table or figure of the paper; the common
//! experiment plumbing (the three load levels, run lengths, formatting)
//! lives here so every binary stays a page long and their outputs stay
//! mutually consistent. See `EXPERIMENTS.md` at the repository root for
//! paper-vs-measured values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serversim::hostload::{self, HostLoadConfig, HostLoadResult, StreamSeries};
use serversim::micro::MicroResult;
use serversim::niload::{self, NiLoadConfig, NiLoadResult};
use simkit::SimDuration;
use std::path::{Path, PathBuf};
use workload::mpegclient::ClientPlan;
use workload::profile::LoadProfile;

pub mod benchout;
pub mod sweep;

pub use nistream_trace::{TraceCapture, TraceRing};
pub use serversim::report::format_table;
pub use sweep::{par_sweep, par_sweep_with, sweep_threads, Cell};

/// Standard figure run length (the paper's traces span ~100 s).
pub const RUN_SECS: u64 = 100;

/// The three load levels of Figures 6–8. The paper labels runs by their
/// *whole-run average* utilization (45 %, 60 %); the sustained plateaus sit
/// higher (the 60 % run exceeds 80 % during the loaded window), so the
/// generator is calibrated against plateau targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoadLevel {
    /// No web load.
    None,
    /// The "45 % average utilization" run.
    Avg45,
    /// The "60 % average utilization" run.
    Avg60,
}

impl LoadLevel {
    /// Display label used in figure outputs.
    pub fn label(self) -> &'static str {
        match self {
            LoadLevel::None => "no web load",
            LoadLevel::Avg45 => "45% avg util",
            LoadLevel::Avg60 => "60% avg util",
        }
    }

    /// Sustained-phase total-utilization target.
    pub fn plateau_target(self) -> f64 {
        match self {
            LoadLevel::None => 0.0,
            LoadLevel::Avg45 => 0.72,
            LoadLevel::Avg60 => 0.94,
        }
    }
}

/// Host-load configuration for one level (Figures 6–8 geometry: load
/// applied from 15 s to 80 s of a 100 s run).
pub fn host_config(level: LoadLevel, run_secs: u64) -> HostLoadConfig {
    // §4.2.3: "The system is then loaded using the remote web clients …
    // and stream requests are made to the scheduler simultaneously" —
    // clients connect when the load window opens (15 s into the trace).
    let mut plan = ClientPlan::two_streams(run_secs);
    for c in &mut plan.clients {
        c.connect_at += SimDuration::from_secs(15);
    }
    let mut cfg = HostLoadConfig {
        run: SimDuration::from_secs(run_secs),
        frames_per_stream: ((run_secs - 15) * 30) as usize,
        plan,
        ..HostLoadConfig::default()
    };
    cfg.web = match level {
        LoadLevel::None => LoadProfile::none(),
        _ => {
            let rate = hostload::web_rate_for(level.plateau_target(), &cfg);
            let end = (run_secs * 4) / 5; // load stops at 80 % of the run
            LoadProfile::experiment(15, 5, end, rate)
        }
    };
    cfg
}

/// Run the host-based experiment at one load level.
pub fn host_run(level: LoadLevel, run_secs: u64) -> HostLoadResult {
    hostload::run(host_config(level, run_secs))
}

/// NI-experiment configuration (Figures 9–10): streams on the NI, the
/// 60 %-level web load on the host where it cannot reach them.
pub fn ni_config(run_secs: u64) -> NiLoadConfig {
    let mut cfg = NiLoadConfig {
        run: SimDuration::from_secs(run_secs),
        frames_per_stream: (run_secs * 30) as usize,
        plan: ClientPlan::two_streams(run_secs),
        ..NiLoadConfig::default()
    };
    let host_cfg = host_config(LoadLevel::Avg60, run_secs);
    cfg.host_web = host_cfg.web.clone();
    cfg
}

/// Run the NI-based experiment (Figures 9–10).
pub fn ni_run(run_secs: u64) -> NiLoadResult {
    niload::run(ni_config(run_secs))
}

/// Whether the binary was invoked with `--csv` (dump full traces for
/// plotting instead of the human-readable summary).
pub fn csv_flag() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Event capacity used for `--trace` runs: 64 Ki events (~4 MB worth of
/// headroom relative to the i960RD board budget) holds every event a
/// 100 s figure run emits without overflow.
pub const TRACE_CAP: usize = 1 << 16;

/// The destination given by `--trace <path>`, if the flag was passed.
/// Tracing reruns nothing and perturbs nothing: the scheduler runs with a
/// ring attached, stdout stays byte-identical, and the drained events are
/// written to `<path>` on exit.
pub fn trace_path() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next().map(PathBuf::from);
        }
    }
    None
}

/// Serialize labeled captures to `path`: CSV when the extension is
/// `.csv`, the `nistream-trace/v1` JSON document otherwise.
pub fn write_trace(path: &Path, runs: &[(&str, &TraceCapture)]) {
    let body = if path.extension().is_some_and(|e| e == "csv") {
        nistream_core::report::trace_to_csv(runs)
    } else {
        nistream_core::report::trace_to_json(runs)
    };
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("failed to write trace to {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// [`host_run`] with an event trace attached (same run, same outputs).
pub fn host_run_traced(level: LoadLevel, run_secs: u64) -> HostLoadResult {
    let mut cfg = host_config(level, run_secs);
    cfg.trace_capacity = TRACE_CAP;
    hostload::run(cfg)
}

/// [`ni_run`] with an event trace attached (same run, same outputs).
pub fn ni_run_traced(run_secs: u64) -> NiLoadResult {
    let mut cfg = ni_config(run_secs);
    cfg.trace_capacity = TRACE_CAP;
    niload::run(cfg)
}

/// The three load levels of Figures 6–8, in figure order.
pub const HOST_LEVELS: [LoadLevel; 3] = [LoadLevel::None, LoadLevel::Avg45, LoadLevel::Avg60];

/// Run the host-based experiment at every load level, fanned across the
/// [`par_sweep`] runner; results come back in [`HOST_LEVELS`] order, so
/// figure binaries compute here and then print sequentially — output is
/// byte-identical to the per-level loop this replaces.
pub fn host_sweep(run_secs: u64, traced: bool) -> Vec<(LoadLevel, HostLoadResult)> {
    let cells: Vec<Cell<'static, HostLoadResult>> = HOST_LEVELS
        .iter()
        .map(|&level| -> Cell<'static, HostLoadResult> {
            Box::new(move || {
                if traced {
                    host_run_traced(level, run_secs)
                } else {
                    host_run(level, run_secs)
                }
            })
        })
        .collect();
    HOST_LEVELS.into_iter().zip(par_sweep(cells)).collect()
}

/// Run the NI-based experiment through the sweep runner (a single-cell
/// sweep: Figures 9–10 have one placement, one load level).
pub fn ni_sweep(run_secs: u64, traced: bool) -> NiLoadResult {
    let cells: Vec<Cell<'static, NiLoadResult>> = vec![Box::new(move || {
        if traced {
            ni_run_traced(run_secs)
        } else {
            ni_run(run_secs)
        }
    })];
    par_sweep(cells).pop().expect("single-cell sweep returns one result")
}

/// Emit one CSV block: a `# tag` comment line followed by the trace.
pub fn print_csv_block(tag: &str, trace: &simkit::Trace, column: &str) {
    println!("# {tag}");
    print!("{}", trace.to_csv(column));
}

/// Section marker for one load level within a figure's output.
pub fn level_header(level: LoadLevel) {
    println!("--- {} ---", level.label());
}

/// The four microbenchmark rows of Tables 1–3, one formatted column per
/// result (Tables 1–2 print software-FP and fixed-point side by side;
/// Table 3 prints the hardware-queue fixed-point column alone).
pub fn micro_rows(columns: &[&MicroResult]) -> Vec<Vec<String>> {
    let row = |label: &str, cell: fn(&MicroResult) -> f64| {
        let mut r = vec![label.to_string()];
        r.extend(columns.iter().map(|m| format!("{:.2}", cell(m))));
        r
    };
    vec![
        row("Total Sched time", |m| m.total_sched_us),
        row("Avg frame Sched time", |m| m.avg_sched_us),
        row("Total time w/o Scheduler", |m| m.total_nosched_us),
        row("Avg frame time w/o Scheduler", |m| m.avg_nosched_us),
    ]
}

/// Per-stream summary line shared by the bandwidth figures: a named
/// bandwidth reading plus the sent/dropped/violations tallies.
pub fn stream_summary(s: &StreamSeries, metric: &str, bps: f64) -> String {
    format!(
        "  {}: {metric} {bps:>8.0} bps; sent {} dropped {} violations {}",
        s.name, s.sent, s.dropped, s.violations
    )
}

/// The first `n` points of a queuing-delay series (the paper's figures
/// plot a bounded frame range).
pub fn qdelay_head(q: &[(u64, f64)], n: usize) -> &[(u64, f64)] {
    &q[..q.len().min(n)]
}

/// Render a bandwidth/utilization trace as a compact `time: value` series
/// (downsampled), for figure binaries.
pub fn render_series(name: &str, trace: &simkit::Trace, unit: &str, points: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "  {name} [{unit}]:");
    for &(t, v) in trace.thin(points).points() {
        let _ = writeln!(out, "    t={:>5.1}s  {:>12.1}", t.as_secs_f64(), v);
    }
    out
}

/// Render queuing-delay-vs-frame series at a few sample frames.
pub fn render_qdelay(name: &str, q: &[(u64, f64)], samples: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "  {name} (frame# -> queuing delay ms):");
    if q.is_empty() {
        let _ = writeln!(out, "    (no frames sent)");
        return out;
    }
    let stride = (q.len() / samples.max(1)).max(1);
    for (n, d) in q.iter().step_by(stride) {
        let _ = writeln!(out, "    frame {n:>5}  {d:>10.0} ms");
    }
    let (n, d) = q.last().expect("non-empty");
    let _ = writeln!(out, "    frame {n:>5}  {d:>10.0} ms  (last)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(LoadLevel::Avg45.plateau_target() < LoadLevel::Avg60.plateau_target());
        assert_eq!(LoadLevel::None.plateau_target(), 0.0);
    }

    #[test]
    fn host_config_geometry() {
        let cfg = host_config(LoadLevel::Avg45, 100);
        assert_eq!(cfg.frames_per_stream, 2_550);
        assert_eq!(cfg.plan.clients[0].connect_at.as_secs_f64(), 15.0);
        let web = cfg.web;
        assert!(web.starts_at().is_some());
        assert_eq!(web.ends_at().unwrap().as_secs_f64(), 80.0);
        let none = host_config(LoadLevel::None, 100).web;
        assert!(none.starts_at().is_none());
    }

    #[test]
    fn render_helpers_do_not_panic_on_empty() {
        let s = render_qdelay("s1", &[], 5);
        assert!(s.contains("no frames"));
        let t = simkit::Trace::new();
        let s = render_series("u", &t, "%", 5);
        assert!(s.contains("[%]"));
    }
}
