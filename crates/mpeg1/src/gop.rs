//! Group-of-pictures structure.

use crate::model::PictureKind;
use core::fmt;
use core::str::FromStr;

/// A validated GOP pattern in *display* order, e.g. `IBBPBBPBB`.
///
/// Constraints enforced: non-empty, starts with `I`, contains only
/// `I`/`P`/`B`. Trailing `B` pictures are legal (open-GOP display order:
/// they reference the next GOP's `I`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GopPattern {
    kinds: Vec<PictureKind>,
}

/// Error from parsing a GOP pattern string.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GopError {
    /// Empty pattern.
    Empty,
    /// First picture must be `I`.
    MustStartWithI,
    /// Character other than `I`, `P`, `B`.
    BadSymbol(char),
}

impl fmt::Display for GopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GopError::Empty => write!(f, "GOP pattern is empty"),
            GopError::MustStartWithI => write!(f, "GOP pattern must start with an I picture"),
            GopError::BadSymbol(c) => write!(f, "invalid picture type {c:?} (expected I, P or B)"),
        }
    }
}

impl std::error::Error for GopError {}

impl GopPattern {
    /// The pattern used throughout the experiments: `IBBPBBPBB` (the common
    /// MPEG-1 N=9, M=3 structure).
    pub fn classic() -> GopPattern {
        "IBBPBBPBB".parse().expect("static pattern is valid")
    }

    /// Pictures per GOP.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the pattern is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Picture kind at display position `i` within the GOP.
    pub fn kind_at(&self, i: usize) -> PictureKind {
        self.kinds[i % self.kinds.len()]
    }

    /// All kinds in display order.
    pub fn kinds(&self) -> &[PictureKind] {
        &self.kinds
    }

    /// Count of a given picture kind per GOP.
    pub fn count(&self, kind: PictureKind) -> usize {
        self.kinds.iter().filter(|&&k| k == kind).count()
    }

    /// Infinite display-order iterator over picture kinds.
    pub fn cycle(&self) -> impl Iterator<Item = PictureKind> + '_ {
        self.kinds.iter().copied().cycle()
    }
}

impl FromStr for GopPattern {
    type Err = GopError;

    fn from_str(s: &str) -> Result<GopPattern, GopError> {
        if s.is_empty() {
            return Err(GopError::Empty);
        }
        let mut kinds = Vec::with_capacity(s.len());
        for c in s.chars() {
            kinds.push(match c.to_ascii_uppercase() {
                'I' => PictureKind::I,
                'P' => PictureKind::P,
                'B' => PictureKind::B,
                other => return Err(GopError::BadSymbol(other)),
            });
        }
        if kinds[0] != PictureKind::I {
            return Err(GopError::MustStartWithI);
        }
        Ok(GopPattern { kinds })
    }
}

impl fmt::Display for GopPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for k in &self.kinds {
            write!(f, "{}", k.letter())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_pattern() {
        let g = GopPattern::classic();
        assert_eq!(g.len(), 9);
        assert_eq!(g.count(PictureKind::I), 1);
        assert_eq!(g.count(PictureKind::P), 2);
        assert_eq!(g.count(PictureKind::B), 6);
        assert_eq!(g.to_string(), "IBBPBBPBB");
    }

    #[test]
    fn parsing_is_case_insensitive() {
        let g: GopPattern = "ibbp".parse().unwrap();
        assert_eq!(g.to_string(), "IBBP");
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!("".parse::<GopPattern>(), Err(GopError::Empty));
        assert_eq!("PBB".parse::<GopPattern>(), Err(GopError::MustStartWithI));
        assert_eq!("IXB".parse::<GopPattern>(), Err(GopError::BadSymbol('X')));
        assert_eq!("IBB".parse::<GopPattern>().unwrap().len(), 3);
        assert_eq!("I".parse::<GopPattern>().unwrap().len(), 1);
    }

    #[test]
    fn cycle_wraps() {
        let g: GopPattern = "IBP".parse().unwrap();
        let kinds: Vec<_> = g.cycle().take(7).collect();
        assert_eq!(
            kinds,
            vec![
                PictureKind::I,
                PictureKind::B,
                PictureKind::P,
                PictureKind::I,
                PictureKind::B,
                PictureKind::P,
                PictureKind::I
            ]
        );
        assert_eq!(g.kind_at(5), PictureKind::P);
    }
}
