//! Picture kinds and the frame-size model.
//!
//! Typical MPEG-1 compression yields strongly type-dependent frame sizes
//! (I ≫ P ≫ B); the synthetic encoder draws sizes from this model so a
//! stream at a requested bitrate exhibits the bursty size sequence a real
//! MPEG-1 file would, which is what makes frame scheduling non-trivial.

use core::fmt;

/// MPEG-1 picture coding types (ISO/IEC 11172-2 picture_coding_type).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PictureKind {
    /// Intra-coded.
    I,
    /// Forward-predicted.
    P,
    /// Bidirectionally predicted.
    B,
}

impl PictureKind {
    /// Wire value of `picture_coding_type` (3 bits).
    pub fn coding_type(self) -> u8 {
        match self {
            PictureKind::I => 1,
            PictureKind::P => 2,
            PictureKind::B => 3,
        }
    }

    /// Decode from the wire value.
    pub fn from_coding_type(v: u8) -> Option<PictureKind> {
        match v {
            1 => Some(PictureKind::I),
            2 => Some(PictureKind::P),
            3 => Some(PictureKind::B),
            _ => None,
        }
    }

    /// Letter used in GOP pattern strings.
    pub fn letter(self) -> char {
        match self {
            PictureKind::I => 'I',
            PictureKind::P => 'P',
            PictureKind::B => 'B',
        }
    }
}

impl fmt::Display for PictureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Relative size weights and dispersion for each picture type.
///
/// Defaults reflect the commonly measured I:P:B ≈ 5:3:1 compression ratio
/// of MPEG-1 at SIF resolution. Given a GOP pattern and target bitrate,
/// [`FrameSizeModel::mean_size`] solves for per-type mean byte counts such
/// that one GOP of frames carries exactly `bitrate / fps × gop_len` bits on
/// average.
#[derive(Clone, Debug)]
pub struct FrameSizeModel {
    /// Relative weight of an I frame.
    pub w_i: f64,
    /// Relative weight of a P frame.
    pub w_p: f64,
    /// Relative weight of a B frame.
    pub w_b: f64,
    /// Multiplicative jitter (fraction of the mean; sizes are clamped to
    /// ±3σ and a hard floor so headers always fit).
    pub jitter: f64,
}

impl Default for FrameSizeModel {
    fn default() -> FrameSizeModel {
        FrameSizeModel {
            w_i: 5.0,
            w_p: 3.0,
            w_b: 1.0,
            jitter: 0.15,
        }
    }
}

impl FrameSizeModel {
    /// Weight of a picture kind.
    pub fn weight(&self, kind: PictureKind) -> f64 {
        match kind {
            PictureKind::I => self.w_i,
            PictureKind::P => self.w_p,
            PictureKind::B => self.w_b,
        }
    }

    /// Mean frame size in bytes for `kind`, such that the GOP averages to
    /// the target bitrate at the given frame rate.
    pub fn mean_size(&self, kind: PictureKind, pattern: &crate::gop::GopPattern, bitrate_bps: u64, fps: f64) -> f64 {
        let bytes_per_gop = bitrate_bps as f64 / 8.0 / fps * pattern.len() as f64;
        let total_weight: f64 = pattern.kinds().iter().map(|&k| self.weight(k)).sum();
        bytes_per_gop * self.weight(kind) / total_weight
    }
}

/// Summary of a parsed (or generated) stream, as the paper's segmentation
/// program would report it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamProfile {
    /// Frames of each kind (I, P, B).
    pub count_i: u64,
    /// P-frame count.
    pub count_p: u64,
    /// B-frame count.
    pub count_b: u64,
    /// Total payload bytes across all frames.
    pub total_bytes: u64,
    /// Largest single frame.
    pub max_frame: u32,
    /// Smallest single frame.
    pub min_frame: u32,
}

impl StreamProfile {
    /// Record one frame.
    pub fn note(&mut self, kind: PictureKind, len: u32) {
        match kind {
            PictureKind::I => self.count_i += 1,
            PictureKind::P => self.count_p += 1,
            PictureKind::B => self.count_b += 1,
        }
        self.total_bytes += u64::from(len);
        self.max_frame = self.max_frame.max(len);
        self.min_frame = if self.min_frame == 0 {
            len
        } else {
            self.min_frame.min(len)
        };
    }

    /// Total frames.
    pub fn frames(&self) -> u64 {
        self.count_i + self.count_p + self.count_b
    }

    /// Mean frame size in bytes.
    pub fn mean_frame(&self) -> f64 {
        if self.frames() == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.frames() as f64
        }
    }

    /// Bitrate this stream represents at the given frame rate.
    pub fn bitrate_at(&self, fps: f64) -> f64 {
        self.mean_frame() * 8.0 * fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gop::GopPattern;

    #[test]
    fn coding_type_round_trip() {
        for k in [PictureKind::I, PictureKind::P, PictureKind::B] {
            assert_eq!(PictureKind::from_coding_type(k.coding_type()), Some(k));
        }
        assert_eq!(PictureKind::from_coding_type(0), None);
        assert_eq!(PictureKind::from_coding_type(4), None);
    }

    #[test]
    fn mean_sizes_hit_bitrate() {
        let model = FrameSizeModel::default();
        let gop = GopPattern::classic();
        let bitrate = 1_500_000u64; // 1.5 Mb/s, classic MPEG-1
        let fps = 25.0;
        let per_gop: f64 = gop
            .kinds()
            .iter()
            .map(|&k| model.mean_size(k, &gop, bitrate, fps))
            .sum();
        let expected = bitrate as f64 / 8.0 / fps * gop.len() as f64;
        assert!((per_gop - expected).abs() < 1e-6);
        // I frames are the largest.
        let i = model.mean_size(PictureKind::I, &gop, bitrate, fps);
        let b = model.mean_size(PictureKind::B, &gop, bitrate, fps);
        assert!(i > 4.9 * b && i < 5.1 * b);
    }

    #[test]
    fn profile_accumulates() {
        let mut p = StreamProfile::default();
        p.note(PictureKind::I, 10_000);
        p.note(PictureKind::B, 2_000);
        p.note(PictureKind::B, 1_000);
        assert_eq!(p.frames(), 3);
        assert_eq!(p.total_bytes, 13_000);
        assert_eq!(p.max_frame, 10_000);
        assert_eq!(p.min_frame, 1_000);
        assert!((p.mean_frame() - 13_000.0 / 3.0).abs() < 1e-9);
        // 30 fps with these frames → ~1.04 Mb/s
        assert!((p.bitrate_at(30.0) - 13_000.0 / 3.0 * 240.0).abs() < 1e-6);
    }
}
