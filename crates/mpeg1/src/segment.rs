//! The MPEG segmentation program, rebuilt.
//!
//! §4.1 of the paper: *"An MPEG segmentation program … is used for
//! segmenting an MPEG encoded file into I, P and B frames and serves as a
//! stream producer."* This module is that program: a start-code scanner
//! that walks an MPEG-1 video elementary stream and produces one descriptor
//! per picture — kind, byte offset, byte length, temporal reference — which
//! producers then inject into scheduler queues (each descriptor's
//! `(offset, len)` is exactly the DMA source the NI would fetch).
//!
//! The scanner is tolerant: unknown start codes are skipped, truncated
//! trailing pictures are still reported, and garbage before the first start
//! code is ignored. Only a picture header too short to contain its type
//! bits is an error.

use crate::model::{PictureKind, StreamProfile};
use crate::start_codes;
use core::fmt;

/// One segmented picture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentedFrame {
    /// Picture kind from the picture header.
    pub kind: PictureKind,
    /// Byte offset of the picture start code.
    pub offset: usize,
    /// Bytes from the picture start code up to the next picture/GOP/
    /// sequence boundary (i.e. the picture with all its slices).
    pub len: u32,
    /// `temporal_reference` (display order within the GOP).
    pub temporal_ref: u16,
}

/// Segmentation failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentError {
    /// A picture start code too close to the end of the buffer to carry a
    /// picture header.
    TruncatedPictureHeader {
        /// Offset of the offending start code.
        offset: usize,
    },
    /// The picture header carried a reserved/invalid coding type.
    BadCodingType {
        /// Offset of the picture start code.
        offset: usize,
        /// The reserved value found.
        value: u8,
    },
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::TruncatedPictureHeader { offset } => {
                write!(f, "truncated picture header at byte {offset}")
            }
            SegmentError::BadCodingType { offset, value } => {
                write!(f, "invalid picture_coding_type {value} at byte {offset}")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

/// Start-code scanner over a byte buffer.
pub struct Segmenter<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Segmenter<'a> {
    /// Segmenter over a complete elementary stream buffer.
    pub fn new(data: &'a [u8]) -> Segmenter<'a> {
        Segmenter { data, pos: 0 }
    }

    /// Segment the whole buffer into pictures.
    pub fn segment_all(mut self) -> Result<Vec<SegmentedFrame>, SegmentError> {
        let mut frames = Vec::new();
        while let Some(f) = self.next_frame()? {
            frames.push(f);
        }
        Ok(frames)
    }

    /// Produce the next picture, or `None` at end of stream.
    pub fn next_frame(&mut self) -> Result<Option<SegmentedFrame>, SegmentError> {
        // Find the next picture start code.
        let Some(start) = self.find_code_at_or_after(self.pos, |c| c == start_codes::PICTURE) else {
            self.pos = self.data.len();
            return Ok(None);
        };
        // Picture header: 10 bits temporal_reference + 3 bits coding type
        // live in the 2 bytes after the 4-byte start code.
        if start + 6 > self.data.len() {
            return Err(SegmentError::TruncatedPictureHeader { offset: start });
        }
        let b0 = u16::from(self.data[start + 4]);
        let b1 = u16::from(self.data[start + 5]);
        let temporal_ref = (b0 << 2) | (b1 >> 6);
        let type_bits = ((b1 >> 3) & 0x7) as u8;
        let kind = PictureKind::from_coding_type(type_bits).ok_or(SegmentError::BadCodingType {
            offset: start,
            value: type_bits,
        })?;

        // The picture extends to the next picture/GOP/sequence-level code.
        let end = self
            .find_code_at_or_after(start + 4, |c| {
                c == start_codes::PICTURE
                    || c == start_codes::GOP
                    || c == start_codes::SEQUENCE_HEADER
                    || c == start_codes::SEQUENCE_END
            })
            .unwrap_or(self.data.len());
        self.pos = end;
        Ok(Some(SegmentedFrame {
            kind,
            offset: start,
            len: (end - start) as u32,
            temporal_ref,
        }))
    }

    /// Byte offset of the first start code at/after `from` whose 32-bit
    /// value satisfies `pred`.
    fn find_code_at_or_after(&self, from: usize, pred: impl Fn(u32) -> bool) -> Option<usize> {
        let d = self.data;
        let mut i = from;
        while i + 4 <= d.len() {
            // Fast scan for the 00 00 01 prefix.
            if d[i] == 0 && d[i + 1] == 0 && d[i + 2] == 1 {
                let code = 0x0000_0100 | u32::from(d[i + 3]);
                if pred(code) {
                    return Some(i);
                }
                i += 3; // skip past the prefix, keep scanning
            } else if d[i + 2] > 1 {
                i += 3; // cannot be inside a prefix ending at i+2
            } else {
                i += 1;
            }
        }
        None
    }
}

/// Segment and summarize in one pass (what the paper's producer does before
/// registering a stream).
pub fn profile(data: &[u8]) -> Result<(Vec<SegmentedFrame>, StreamProfile), SegmentError> {
    let frames = Segmenter::new(data).segment_all()?;
    let mut p = StreamProfile::default();
    for f in &frames {
        p.note(f.kind, f.len);
    }
    Ok((frames, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{EncoderConfig, SyntheticEncoder};
    use crate::gop::GopPattern;

    #[test]
    fn round_trip_matches_ground_truth() {
        let (bytes, truth) = SyntheticEncoder::new(EncoderConfig::default()).encode(45);
        let frames = Segmenter::new(&bytes).segment_all().unwrap();
        assert_eq!(frames.len(), truth.len());
        for (seg, emitted) in frames.iter().zip(&truth) {
            assert_eq!(seg.kind, emitted.kind);
            assert_eq!(seg.offset, emitted.offset);
            assert_eq!(seg.temporal_ref, emitted.temporal_ref);
        }
        // Lengths: every segmented frame ends where the next boundary
        // begins; the sum of lengths plus headers equals the stream.
        let total: u64 = frames.iter().map(|f| u64::from(f.len)).sum();
        assert!(total <= bytes.len() as u64);
        assert!(total > bytes.len() as u64 * 9 / 10, "headers are a small fraction");
    }

    #[test]
    fn emitted_lengths_match_except_interleaved_gop_headers() {
        // The encoder's ground-truth length is picture-to-boundary too, so
        // they must agree exactly.
        let (bytes, truth) = SyntheticEncoder::new(EncoderConfig::default()).encode(20);
        let frames = Segmenter::new(&bytes).segment_all().unwrap();
        for (seg, emitted) in frames.iter().zip(&truth) {
            // A GOP header (8 bytes) follows the last frame of each GOP and
            // is attributed to the *preceding* picture's extent by the
            // scanner (it scans to the next boundary).
            assert_eq!(seg.len, emitted.len, "{seg:?} vs {emitted:?}");
        }
    }

    #[test]
    fn empty_and_garbage_streams() {
        assert!(Segmenter::new(&[]).segment_all().unwrap().is_empty());
        let garbage = vec![0xAB; 1024];
        assert!(Segmenter::new(&garbage).segment_all().unwrap().is_empty());
    }

    #[test]
    fn truncated_picture_header_is_an_error() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&start_codes::PICTURE.to_be_bytes());
        bytes.push(0x00); // only 1 of 2 header bytes
        let err = Segmenter::new(&bytes).segment_all().unwrap_err();
        assert_eq!(err, SegmentError::TruncatedPictureHeader { offset: 0 });
    }

    #[test]
    fn reserved_coding_type_is_an_error() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&start_codes::PICTURE.to_be_bytes());
        // temporal_ref = 0, coding type = 7 (reserved): b1 = 00 111 000
        bytes.push(0x00);
        bytes.push(0b0011_1000);
        bytes.extend_from_slice(&[0x55; 8]);
        let err = Segmenter::new(&bytes).segment_all().unwrap_err();
        assert_eq!(err, SegmentError::BadCodingType { offset: 0, value: 7 });
    }

    #[test]
    fn truncated_final_picture_still_reported() {
        let (bytes, truth) = SyntheticEncoder::new(EncoderConfig::default()).encode(9);
        // Chop off the sequence end code and half the last picture.
        let cut = truth.last().unwrap().offset + 10;
        let frames = Segmenter::new(&bytes[..cut]).segment_all().unwrap();
        assert_eq!(frames.len(), truth.len());
        assert_eq!(frames.last().unwrap().len, 10);
    }

    #[test]
    fn profile_counts_match_pattern() {
        let cfg = EncoderConfig {
            gop: "IBBPBBPBB".parse::<GopPattern>().unwrap(),
            ..EncoderConfig::default()
        };
        let (bytes, _) = SyntheticEncoder::new(cfg).encode(27); // 3 GOPs
        let (frames, prof) = profile(&bytes).unwrap();
        assert_eq!(frames.len(), 27);
        assert_eq!(prof.count_i, 3);
        assert_eq!(prof.count_p, 6);
        assert_eq!(prof.count_b, 18);
        assert_eq!(prof.frames(), 27);
        assert!(prof.max_frame >= prof.min_frame);
    }

    #[test]
    fn scanner_not_fooled_by_slice_codes() {
        let (bytes, truth) = SyntheticEncoder::new(EncoderConfig::default()).encode(9);
        let frames = Segmenter::new(&bytes).segment_all().unwrap();
        // Slices (one per picture) must not create extra frames.
        assert_eq!(frames.len(), truth.len());
    }
}
