//! # mpeg1 — MPEG-1 video bitstream synthesis and segmentation
//!
//! The paper's unit of streaming and scheduling is the **MPEG-I frame**. Its
//! experiments use "an MPEG segmentation program … for segmenting an MPEG
//! encoded file into I, P and B frames", which "serves as a stream producer"
//! and "emulates the MPEG file segmentation process in an MPEG player"
//! (§4.1). We do not have the authors' MPEG files, so this crate provides
//! both halves of that pipeline:
//!
//! * [`encode::SyntheticEncoder`] — writes a structurally valid MPEG-1 video
//!   elementary stream (sequence header → GOP headers → picture headers →
//!   slice payloads → sequence end code, per ISO/IEC 11172-2 syntax at the
//!   header level) with frame sizes drawn from a calibrated per-type model
//!   ([`model::FrameSizeModel`]): I-frames large, P medium, B small, sized
//!   so the stream hits a requested bitrate. Payload bytes are noise with
//!   start-code emulation prevented.
//! * [`segment::Segmenter`] — the segmentation program rebuilt: scans for
//!   start codes, decodes picture headers (temporal reference + coding
//!   type), and yields per-frame descriptors `(kind, offset, length)` that
//!   producers inject into scheduler queues.
//! * [`gop::GopPattern`] — GOP structure (e.g. `IBBPBBPBB`) parsing and
//!   validation.
//!
//! Round-tripping is the core invariant (property-tested): segmenting a
//! synthesized stream recovers exactly the frame sequence the encoder
//! emitted, with byte-accurate lengths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
pub mod gop;
pub mod model;
pub mod segment;

pub use encode::{EncoderConfig, SyntheticEncoder};
pub use gop::GopPattern;
pub use model::{FrameSizeModel, PictureKind, StreamProfile};
pub use segment::{SegmentError, SegmentedFrame, Segmenter};

/// MPEG start codes used by this crate (32-bit big-endian on the wire).
pub mod start_codes {
    /// Picture start code.
    pub const PICTURE: u32 = 0x0000_0100;
    /// First slice start code (slices 0x101..=0x1AF).
    pub const SLICE_FIRST: u32 = 0x0000_0101;
    /// Last slice start code.
    pub const SLICE_LAST: u32 = 0x0000_01AF;
    /// Sequence header code.
    pub const SEQUENCE_HEADER: u32 = 0x0000_01B3;
    /// Group-of-pictures start code.
    pub const GOP: u32 = 0x0000_01B8;
    /// Sequence end code.
    pub const SEQUENCE_END: u32 = 0x0000_01B7;
}
