//! Synthetic MPEG-1 video elementary stream writer.
//!
//! Produces byte streams with genuine MPEG-1 header syntax — sequence
//! header, GOP headers, picture headers with correct `temporal_reference`
//! and `picture_coding_type` bit layout, slice start codes — and noise
//! payloads whose sizes follow [`FrameSizeModel`]. The result segments
//! correctly with any start-code scanner, including ours and real tools'
//! front-ends.
//!
//! What is *not* synthesized: actual DCT coefficient data (payloads are
//! start-code-free noise). Nothing in the paper's pipeline decodes pixels;
//! only frame boundaries, types and sizes matter to a frame scheduler.

use crate::gop::GopPattern;
use crate::model::{FrameSizeModel, PictureKind};
use crate::start_codes;

/// Minimal bytes a picture occupies (picture header + one slice header +
/// a byte of payload).
pub const MIN_PICTURE_BYTES: u32 = 16;

/// Configuration for the synthetic encoder.
#[derive(Clone, Debug)]
pub struct EncoderConfig {
    /// Horizontal size in pixels (12-bit field).
    pub width: u16,
    /// Vertical size in pixels (12-bit field).
    pub height: u16,
    /// Frames per second (maps onto the nearest MPEG-1 frame_rate_code).
    pub fps: f64,
    /// Target video bitrate in bits/second.
    pub bitrate: u64,
    /// GOP structure in display order.
    pub gop: GopPattern,
    /// Per-type size model.
    pub sizes: FrameSizeModel,
    /// RNG seed (streams are deterministic per seed).
    pub seed: u64,
}

impl Default for EncoderConfig {
    fn default() -> EncoderConfig {
        EncoderConfig {
            width: 352,
            height: 240,
            fps: 30.0,
            bitrate: 1_500_000,
            gop: GopPattern::classic(),
            sizes: FrameSizeModel::default(),
            seed: 0x6d70_6567, // "mpeg"
        }
    }
}

/// One frame the encoder emitted (ground truth for round-trip tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmittedFrame {
    /// Picture kind.
    pub kind: PictureKind,
    /// Byte offset of the picture start code in the stream.
    pub offset: usize,
    /// Total bytes from the picture start code to the next start boundary.
    pub len: u32,
    /// `temporal_reference` written in the picture header.
    pub temporal_ref: u16,
}

/// Writes synthetic MPEG-1 streams.
pub struct SyntheticEncoder {
    cfg: EncoderConfig,
    rng: SplitMix64,
}

impl SyntheticEncoder {
    /// Encoder for the given configuration.
    pub fn new(cfg: EncoderConfig) -> SyntheticEncoder {
        let seed = cfg.seed;
        SyntheticEncoder {
            cfg,
            rng: SplitMix64::new(seed),
        }
    }

    /// Encode `frames` pictures; returns the stream bytes and the ground
    /// truth frame list.
    pub fn encode(&mut self, frames: usize) -> (Vec<u8>, Vec<EmittedFrame>) {
        let mut out = Vec::with_capacity(frames * 4 * 1024);
        let mut truth = Vec::with_capacity(frames);
        self.write_sequence_header(&mut out);

        let gop_len = self.cfg.gop.len();
        for idx in 0..frames {
            let pos_in_gop = idx % gop_len;
            if pos_in_gop == 0 {
                self.write_gop_header(&mut out, idx as u32);
            }
            let kind = self.cfg.gop.kind_at(pos_in_gop);
            let target = self.draw_size(kind);
            let offset = out.len();
            self.write_picture(&mut out, kind, pos_in_gop as u16, target);
            truth.push(EmittedFrame {
                kind,
                offset,
                len: (out.len() - offset) as u32,
                temporal_ref: pos_in_gop as u16,
            });
        }
        push_code(&mut out, start_codes::SEQUENCE_END);
        (out, truth)
    }

    /// Draw a frame size (bytes) for `kind` around the model mean.
    fn draw_size(&mut self, kind: PictureKind) -> u32 {
        let mean = self
            .cfg
            .sizes
            .mean_size(kind, &self.cfg.gop, self.cfg.bitrate, self.cfg.fps);
        let jitter = self.cfg.sizes.jitter;
        // Uniform jitter in [1-3j, 1+3j] clipped — cheap, symmetric,
        // deterministic; the scheduler cares about burstiness, not the
        // exact size law.
        let u = self.rng.f64() * 2.0 - 1.0;
        let factor = (1.0 + 3.0 * jitter * u).max(0.1);
        ((mean * factor).round() as u32).max(MIN_PICTURE_BYTES)
    }

    fn write_sequence_header(&mut self, out: &mut Vec<u8>) {
        push_code(out, start_codes::SEQUENCE_HEADER);
        let mut bw = BitWriter::new(out);
        bw.put(u32::from(self.cfg.width), 12);
        bw.put(u32::from(self.cfg.height), 12);
        bw.put(1, 4); // aspect_ratio: square pixels
        bw.put(frame_rate_code(self.cfg.fps), 4);
        // bit_rate in 400 bps units; 18 bits; 0x3FFFF = variable.
        let units = self.cfg.bitrate.div_ceil(400).min(0x3_FFFE) as u32;
        bw.put(units, 18);
        bw.put(1, 1); // marker bit
        bw.put(20, 10); // vbv_buffer_size
        bw.put(0, 1); // constrained_parameters_flag
        bw.put(0, 1); // load_intra_quantiser_matrix
        bw.put(0, 1); // load_non_intra_quantiser_matrix
        bw.finish();
    }

    fn write_gop_header(&mut self, out: &mut Vec<u8>, frame_index: u32) {
        push_code(out, start_codes::GOP);
        let mut bw = BitWriter::new(out);
        // time_code: drop(1) hh(5) mm(6) marker(1) ss(6) pic(6) = 25 bits.
        let fps = self.cfg.fps.max(1.0) as u32;
        let total_secs = frame_index / fps;
        let pic = frame_index % fps;
        bw.put(0, 1);
        bw.put((total_secs / 3600) % 24, 5);
        bw.put((total_secs / 60) % 60, 6);
        bw.put(1, 1);
        bw.put(total_secs % 60, 6);
        bw.put(pic, 6);
        bw.put(1, 1); // closed_gop
        bw.put(0, 1); // broken_link
        bw.finish();
    }

    /// Picture header + one slice filled with payload to hit `target` total
    /// bytes for the picture (including its start code).
    fn write_picture(&mut self, out: &mut Vec<u8>, kind: PictureKind, temporal_ref: u16, target: u32) {
        let start = out.len();
        push_code(out, start_codes::PICTURE);
        let mut bw = BitWriter::new(out);
        bw.put(u32::from(temporal_ref), 10);
        bw.put(u32::from(kind.coding_type()), 3);
        bw.put(0xFFFF, 16); // vbv_delay: variable
        if kind != PictureKind::I {
            bw.put(0, 1); // full_pel_forward_vector
            bw.put(7, 3); // forward_f_code
        }
        if kind == PictureKind::B {
            bw.put(0, 1); // full_pel_backward_vector
            bw.put(7, 3); // backward_f_code
        }
        bw.finish();
        push_code(out, start_codes::SLICE_FIRST);
        // Fill with start-code-free noise up to the target length.
        let written = (out.len() - start) as u32;
        let payload = target.saturating_sub(written).max(1);
        for _ in 0..payload {
            let b = (self.rng.next() & 0xFF) as u8;
            // Zero bytes could form 00 00 01 sequences; bias them away.
            out.push(if b == 0 { 0xAA } else { b });
        }
    }
}

/// Nearest MPEG-1 `frame_rate_code` for an fps value.
pub fn frame_rate_code(fps: f64) -> u32 {
    const TABLE: [(u32, f64); 8] = [
        (1, 23.976),
        (2, 24.0),
        (3, 25.0),
        (4, 29.97),
        (5, 30.0),
        (6, 50.0),
        (7, 59.94),
        (8, 60.0),
    ];
    TABLE
        .iter()
        .min_by(|a, b| (a.1 - fps).abs().partial_cmp(&(b.1 - fps).abs()).expect("finite"))
        .expect("non-empty table")
        .0
}

fn push_code(out: &mut Vec<u8>, code: u32) {
    out.extend_from_slice(&code.to_be_bytes());
}

/// MSB-first bit writer that byte-aligns (zero padding) on `finish`.
struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    acc: u32,
    nbits: u32,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut Vec<u8>) -> BitWriter<'a> {
        BitWriter { out, acc: 0, nbits: 0 }
    }

    fn put(&mut self, value: u32, bits: u32) {
        debug_assert!(bits <= 24 && (bits == 32 || value < (1 << bits)));
        self.acc = (self.acc << bits) | value;
        self.nbits += bits;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push(((self.acc >> self.nbits) & 0xFF) as u8);
        }
    }

    fn finish(mut self) {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put(0, pad);
        }
    }
}

/// SplitMix64 — tiny deterministic RNG private to the encoder (keeps this
/// crate dependency-free; workload realism lives in `simkit::rng`).
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_starts_with_sequence_header_and_ends_with_end_code() {
        let (bytes, _) = SyntheticEncoder::new(EncoderConfig::default()).encode(9);
        assert_eq!(&bytes[..4], &start_codes::SEQUENCE_HEADER.to_be_bytes());
        assert_eq!(&bytes[bytes.len() - 4..], &start_codes::SEQUENCE_END.to_be_bytes());
    }

    #[test]
    fn truth_matches_gop_pattern() {
        let (_, truth) = SyntheticEncoder::new(EncoderConfig::default()).encode(18);
        let expected: Vec<PictureKind> = GopPattern::classic().cycle().take(18).collect();
        let got: Vec<PictureKind> = truth.iter().map(|f| f.kind).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = SyntheticEncoder::new(EncoderConfig::default()).encode(30);
        let (b, _) = SyntheticEncoder::new(EncoderConfig::default()).encode(30);
        assert_eq!(a, b);
        let other = EncoderConfig {
            seed: EncoderConfig::default().seed ^ 1,
            ..EncoderConfig::default()
        };
        let (c, _) = SyntheticEncoder::new(other).encode(30);
        assert_ne!(a, c);
    }

    #[test]
    fn bitrate_is_respected_on_average() {
        let cfg = EncoderConfig::default();
        let fps = cfg.fps;
        let bitrate = cfg.bitrate as f64;
        let (_, truth) = SyntheticEncoder::new(cfg).encode(900); // 30 s of video
        let total: u64 = truth.iter().map(|f| u64::from(f.len)).sum();
        let measured = total as f64 * 8.0 * fps / truth.len() as f64;
        assert!(
            (measured - bitrate).abs() / bitrate < 0.05,
            "measured {measured} vs target {bitrate}"
        );
    }

    #[test]
    fn i_frames_dominate_sizes() {
        let (_, truth) = SyntheticEncoder::new(EncoderConfig::default()).encode(90);
        let mean = |k: PictureKind| {
            let v: Vec<u64> = truth.iter().filter(|f| f.kind == k).map(|f| u64::from(f.len)).collect();
            v.iter().sum::<u64>() as f64 / v.len() as f64
        };
        // Model weights are 5:3:1 → I/P ≈ 1.67, P/B ≈ 3, within jitter.
        assert!(mean(PictureKind::I) > 1.3 * mean(PictureKind::P));
        assert!(mean(PictureKind::P) > 2.0 * mean(PictureKind::B));
    }

    #[test]
    fn no_spurious_start_codes_in_payload() {
        let (bytes, truth) = SyntheticEncoder::new(EncoderConfig::default()).encode(30);
        // Count picture start codes in the raw bytes: must equal frames.
        let mut count = 0;
        for w in bytes.windows(4) {
            if w == start_codes::PICTURE.to_be_bytes() {
                count += 1;
            }
        }
        assert_eq!(count, truth.len());
    }

    #[test]
    fn frame_rate_codes() {
        assert_eq!(frame_rate_code(30.0), 5);
        assert_eq!(frame_rate_code(25.0), 3);
        assert_eq!(frame_rate_code(24.1), 2);
        assert_eq!(frame_rate_code(60.0), 8);
    }

    #[test]
    fn frames_meet_minimum_size() {
        let cfg = EncoderConfig {
            bitrate: 1_000, // absurdly low: sizes clamp to the floor
            ..EncoderConfig::default()
        };
        let (_, truth) = SyntheticEncoder::new(cfg).encode(9);
        for f in truth {
            assert!(f.len >= MIN_PICTURE_BYTES, "{f:?}");
        }
    }
}
