//! # nistream — NI co-processor media streaming
//!
//! Umbrella crate for the whole system: re-exports every workspace crate
//! under one roof so examples and integration tests read naturally.
//! See `nistream_core` for the public API and the repository README for
//! the map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dvcm;
pub use dwcs;
pub use fixedpt;
pub use hwsim;
pub use i2o;
pub use mpeg1;
pub use nistream_core as core;
pub use nistream_core::engine;
pub use nistream_core::pool;
pub use nistream_trace as trace;
pub use serversim;
pub use simkit;
pub use vxkit;
pub use workload;
