//! The complete Path C data path (Figure 3), byte for byte:
//!
//!   MPEG-1 file on the NI's SCSI disk
//!     → BSA block reads DMA it into card memory
//!     → the segmentation program finds the frames (addresses in card
//!       memory — "a single copy of frames in NI memory")
//!     → descriptors enter the DWCS scheduler through DVCM instructions
//!     → each dispatch becomes a LAN packet-send of the frame's extent
//!     → the wire carries exactly the original file's frame bytes.
//!
//! "The host CPU, I/O bus and host CPU filesystem are completely
//! eliminated from the transfer path" — everything below happens inside
//! the NI runtime.

use nistream::dvcm::instr::{StreamSpec, VcmInstruction};
use nistream::dvcm::{MediaSchedExt, NiRuntime, VcmHandle};
use nistream::dwcs::types::{MILLISECOND, SECOND};
use nistream::dwcs::{FrameKind, StreamId};
use nistream::i2o::bsa::BLOCK_BYTES;
use nistream::i2o::devices::TID_HOST;
use nistream::mpeg1::{EncoderConfig, PictureKind, Segmenter, SyntheticEncoder};

const FILE_BASE: u64 = 0x1_0000;

/// Issue one raw I2O request and drain/release all replies.
fn issue(rt: &mut NiRuntime, frame: nistream::i2o::MessageFrame) -> Vec<nistream::i2o::MessageFrame> {
    let mfa = rt.mu.host_alloc().expect("inbound frame available");
    rt.mu.host_post(mfa, frame).expect("post");
    rt.service_inbound(0, 8);
    let mut replies = Vec::new();
    while let Some((m, reply)) = rt.mu.host_drain_reply() {
        rt.mu.host_release_reply(m).expect("release");
        replies.push(reply);
    }
    replies
}

/// BSA: pull `file` into card memory at FILE_BASE, 8 blocks per request.
fn load_file(rt: &mut NiRuntime, disk: nistream::i2o::Tid, file: &[u8]) {
    let blocks = file.len().div_ceil(BLOCK_BYTES);
    for lba in (0..blocks).step_by(8) {
        let count = 8.min(blocks - lba) as u32;
        let addr = FILE_BASE + (lba * BLOCK_BYTES) as u64;
        let replies = issue(
            rt,
            nistream::i2o::bsa::read_request(disk, TID_HOST, lba as u32, lba as u32, count, addr),
        );
        assert_eq!(replies.len(), 1);
    }
}

#[test]
fn mpeg_file_travels_disk_to_wire_unchanged() {
    // The file on disk.
    let (file, _) = SyntheticEncoder::new(EncoderConfig::default()).encode(18);

    let mut rt = NiRuntime::new(64);
    rt.registry.load(Box::new(MediaSchedExt::new(4)));
    let disk = rt.attach_disk(&file);
    let lan = rt.attach_lan();
    let mut host = VcmHandle::new(rt.ext_tid);

    // Disk → card memory.
    load_file(&mut rt, disk, &file);
    let in_mem = rt.memory.read(FILE_BASE, file.len()).expect("file resident").to_vec();
    assert_eq!(in_mem, file, "BSA landed the exact image");

    // Segment in card memory; open the stream; enqueue descriptors.
    let frames = Segmenter::new(&in_mem).segment_all().unwrap();
    assert_eq!(frames.len(), 18);
    let open = host
        .call(
            &mut rt,
            VcmInstruction::OpenStream(StreamSpec {
                period: 33 * MILLISECOND,
                loss_num: 2,
                loss_den: 8,
                droppable: true,
            }),
            0,
        )
        .unwrap();
    let sid = StreamId(open.payload[0]);
    for f in &frames {
        let kind = match f.kind {
            PictureKind::I => FrameKind::I,
            PictureKind::P => FrameKind::P,
            PictureKind::B => FrameKind::B,
        };
        let r = host
            .call(
                &mut rt,
                VcmInstruction::EnqueueFrame {
                    stream: sid,
                    addr: FILE_BASE + f.offset as u64,
                    len: f.len,
                    kind,
                },
                0,
            )
            .unwrap();
        assert_eq!(r.status, 0);
    }

    // NI task loop: poll the scheduler, turn every dispatch into a LAN
    // packet-send of the dispatched extent.
    let mut now = 0u64;
    loop {
        rt.poll_extensions(now);
        // Drain the media scheduler's outbox (concrete-type access).
        let mut sends = Vec::new();
        {
            let ext: &mut MediaSchedExt = rt.registry.get_as(0).expect("media scheduler loaded");
            while let Some(rec) = ext.pop_dispatch() {
                sends.push((rec.frame.desc.addr, rec.frame.desc.len));
            }
        }
        for (addr, len) in sends {
            let replies = issue(&mut rt, nistream::i2o::lan::send_request(lan, TID_HOST, 0, addr, len));
            assert_eq!(replies.len(), 1);
        }
        let done = {
            let ext: &mut MediaSchedExt = rt.registry.get_as(0).expect("loaded");
            !ext.has_pending() && ext.outbox_len() == 0
        };
        if done || now > 10 * SECOND {
            break;
        }
        now += 33 * MILLISECOND;
    }

    // The wire carries exactly the file's frame bytes, in order.
    let port = rt.lan_mut(lan).unwrap();
    let tx = port.drain();
    assert_eq!(tx.len(), frames.len(), "every frame hit the wire");
    for (pkt, f) in tx.iter().zip(&frames) {
        let expect = &file[f.offset..f.offset + f.len as usize];
        assert_eq!(&pkt.bytes[..], expect, "frame at offset {} intact", f.offset);
    }
}

#[test]
fn lan_backpressure_surfaces_as_tx_full() {
    let (file, _) = SyntheticEncoder::new(EncoderConfig::default()).encode(3);
    let mut rt = NiRuntime::new(64);
    let disk = rt.attach_disk(&file);
    let lan = rt.attach_lan();
    load_file(&mut rt, disk, &file);
    // Shrink the port queue and flood it.
    rt.lan_mut(lan).unwrap().tx_capacity = 2;
    let mut statuses = Vec::new();
    for i in 0..4 {
        let replies = issue(
            &mut rt,
            nistream::i2o::lan::send_request(lan, TID_HOST, i, FILE_BASE, 100),
        );
        for r in replies {
            if let nistream::i2o::I2oFunction::Reply { status, .. } = r.function {
                statuses.push(status);
            }
        }
    }
    assert_eq!(statuses, vec![0, 0, 5, 5], "TX_FULL after capacity");
    // Draining restores service.
    rt.lan_mut(lan).unwrap().drain();
    let replies = issue(
        &mut rt,
        nistream::i2o::lan::send_request(lan, TID_HOST, 9, FILE_BASE, 100),
    );
    assert!(matches!(
        replies[0].function,
        nistream::i2o::I2oFunction::Reply { status: 0, .. }
    ));
}
