//! Integration: the real threaded engine end to end — multiple producer
//! threads, the DWCS scheduler thread, pool-backed payloads, collect sink.

use nistream::core::engine::{MediaServer, SinkKind};
use nistream::core::qos::StreamQos;
use nistream::dwcs::scheduler::Pacing;
use nistream::dwcs::types::MILLISECOND;
use std::time::{Duration, Instant};

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

#[test]
fn concurrent_producers_from_multiple_threads() {
    let server = MediaServer::builder()
        .pool(2048, 2048)
        .sink(SinkKind::Collect)
        .pacing(Pacing::WorkConserving)
        .start()
        .unwrap();

    const STREAMS: usize = 4;
    const FRAMES: u64 = 200;
    let mut threads = Vec::new();
    let mut ids = Vec::new();
    for t in 0..STREAMS {
        let mut handle = server.open_stream(StreamQos::new(MILLISECOND, 2, 8)).unwrap();
        ids.push(handle.id());
        threads.push(std::thread::spawn(move || {
            let payload = vec![t as u8; 700];
            let mut pushed = 0u64;
            while pushed < FRAMES {
                match handle.send(&payload) {
                    Ok(()) => pushed += 1,
                    Err(_) => std::thread::sleep(Duration::from_micros(200)),
                }
            }
        }));
    }
    for th in threads {
        th.join().unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(10), || server.collected().len() as u64
            == STREAMS as u64 * FRAMES),
        "delivered {} of {}",
        server.collected().len(),
        STREAMS as u64 * FRAMES
    );

    // Per-stream FIFO and payload integrity markers.
    let recs = server.collected();
    for (t, id) in ids.iter().enumerate() {
        let seqs: Vec<u64> = recs.iter().filter(|r| r.stream == *id).map(|r| r.seq).collect();
        assert_eq!(seqs.len() as u64, FRAMES, "stream {t}");
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "stream {t} FIFO");
    }
    for id in &ids {
        let stats = server.stats(*id).unwrap();
        assert_eq!(stats.enqueued, FRAMES);
        assert_eq!(stats.sent(), FRAMES);
        assert_eq!(stats.violations, 0);
    }
    server.shutdown();
}

#[test]
fn paced_engine_tracks_stream_rate_under_saturation() {
    // Feed far more than real-time; paced output must hold ~1/period.
    let server = MediaServer::builder()
        .pool(1024, 512)
        .sink(SinkKind::Collect)
        .pacing(Pacing::DeadlinePaced)
        .start()
        .unwrap();
    let period = 4 * MILLISECOND;
    // Loss-intolerant: on a loaded box the scheduler thread can be starved
    // past the late grace, and a droppable stream would shed those frames —
    // the collected count would then never reach 100. Send-late keeps every
    // frame observable while still exercising deadline pacing.
    let mut s = server.open_stream(StreamQos::new(period, 2, 8).send_late()).unwrap();
    for _ in 0..100 {
        while s.send(&[7u8; 128]).is_err() {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    assert!(wait_until(Duration::from_secs(10), || server.collected().len() >= 100));
    let recs = server.collected();
    let span = recs.last().unwrap().at_ns - recs.first().unwrap().at_ns;
    let per_frame = span / (recs.len() as u64 - 1);
    assert!(
        (3 * MILLISECOND..6 * MILLISECOND).contains(&per_frame),
        "paced inter-dispatch {} us",
        per_frame / 1_000
    );
    server.shutdown();
}

#[test]
fn pool_slots_fully_recovered_after_run() {
    let server = MediaServer::builder()
        .pool(64, 256)
        .sink(SinkKind::Discard)
        .pacing(Pacing::WorkConserving)
        .start()
        .unwrap();
    let mut s = server.open_stream(StreamQos::new(MILLISECOND, 2, 8)).unwrap();
    let pool = {
        // send everything, wait for drain
        for _ in 0..500u32 {
            while s.send(&[1u8; 64]).is_err() {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        s
    };
    assert!(wait_until(Duration::from_secs(10), || {
        server
            .stats(pool.id())
            .map(|st| st.sent() + st.dropped == 500)
            .unwrap_or(false)
    }));
    server.shutdown();
}
