//! Property: the DWCS guarantee. For a *feasible* stream set (mandatory
//! utilization ≤ 1) with synchronous periodic arrivals and unit service,
//! the scheduler violates no window constraint; infeasible sets violate
//! under sustained overload but still bound per-window drops by x/y.

use nistream::dwcs::types::MILLISECOND;
use nistream::dwcs::{admission, DualHeap, DwcsScheduler, FrameDesc, FrameKind, StreamQos};
use proptest::prelude::*;

const SERVICE: u64 = MILLISECOND; // unit service slot

fn qos_strategy() -> impl Strategy<Value = StreamQos> {
    // Periods 4-40 ms, tolerance x/y with y in 2..9.
    (4u64..40, 1u32..9)
        .prop_flat_map(|(period_ms, y)| (0..=y).prop_map(move |x| StreamQos::new(period_ms * MILLISECOND, x, y)))
}

/// Drive synchronous periodic arrivals for `horizon_ms`, serving one
/// packet per SERVICE slot (work-conserving), and return total violations.
fn run_system(set: &[StreamQos], horizon_ms: u64) -> u64 {
    let mut s = DwcsScheduler::new(DualHeap::new(set.len()));
    let sids: Vec<_> = set.iter().map(|q| s.add_stream(*q)).collect();
    let horizon = horizon_ms * MILLISECOND;
    let mut next_arrival: Vec<u64> = vec![0; set.len()];
    let mut seqs = vec![0u64; set.len()];
    let mut now = 0u64;
    while now < horizon {
        for (i, q) in set.iter().enumerate() {
            while next_arrival[i] <= now {
                s.enqueue(
                    sids[i],
                    FrameDesc::new(sids[i], seqs[i], 1000, FrameKind::P),
                    next_arrival[i],
                );
                seqs[i] += 1;
                next_arrival[i] += q.period;
            }
        }
        let _ = s.schedule_next(now);
        now += SERVICE;
    }
    sids.iter().map(|&sid| s.stats(sid).violations).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn feasible_sets_never_violate(set in proptest::collection::vec(qos_strategy(), 1..6)) {
        prop_assume!(admission::feasible(&set, SERVICE));
        let violations = run_system(&set, 2_000);
        prop_assert_eq!(violations, 0, "feasible set must meet every window");
    }

    #[test]
    fn overload_sheds_but_never_drops_beyond_budget(set in proptest::collection::vec(qos_strategy(), 2..7)) {
        // Whatever the load, per-stream drops never exceed the x/y share
        // of departures (drop-within-budget policy).
        let mut s = DwcsScheduler::new(DualHeap::new(set.len()));
        let sids: Vec<_> = set.iter().map(|q| s.add_stream(*q)).collect();
        for (i, q) in set.iter().enumerate() {
            for seq in 0..200u64 {
                s.enqueue(sids[i], FrameDesc::new(sids[i], seq, 1000, FrameKind::P), seq * q.period / 4);
            }
        }
        let mut now = 0u64;
        while s.has_pending() {
            let _ = s.schedule_next(now);
            now += SERVICE * 2;
        }
        for (i, q) in set.iter().enumerate() {
            let st = s.stats(sids[i]);
            let departures = st.sent() + st.dropped;
            prop_assert_eq!(departures, 200);
            // x of every y may drop; allow the final partial window.
            let bound = departures * u64::from(q.loss_num) / u64::from(q.loss_den) + u64::from(q.loss_num);
            prop_assert!(st.dropped <= bound, "stream {i}: {} dropped > bound {bound} (tolerance {}/{})",
                st.dropped, q.loss_num, q.loss_den);
        }
    }
}
