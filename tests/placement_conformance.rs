//! Placement conformance: the host engine and the NI extension are the
//! *same scheduler*.
//!
//! The paper's central claim is that moving the DWCS scheduler from the
//! host CPU to the network co-processor changes *where* decisions run,
//! never *what* they are. After the `dwcs::svc` consolidation that claim
//! is structural — both placements drive one `SchedService` — and this
//! suite pins it observationally: an identical multi-stream frame script
//! (mixed feasible/infeasible QoS, droppable and send-late streams, both
//! dispatch modes) is pushed through
//!
//! * the host engine's service core (`host_sched_core`: virtual clock,
//!   real `FramePool`, collecting sink), and
//! * the DVCM media-scheduler extension (descriptors injected through
//!   VCM instructions, dispatches drained from the NI outbox),
//!
//! and every observable must match exactly: dispatch order with
//! timestamps and on-time flags, the dropped-frame set in reclaim order,
//! and per-stream service statistics.

mod common;

use common::{base_config, decoupled_config, drive, script};
use nistream::dvcm::instr::{StreamSpec, VcmInstruction};
use nistream::dvcm::{ExtensionModule, MediaSchedExt};
use nistream::dwcs::{FrameDesc, SchedulerConfig, StreamQos};
use nistream::engine::{host_sched_core, CollectSink, EngineClock};
use nistream::pool::FramePool;

/// Everything observable about one run, placement-independent.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    /// `(stream, seq, on_time, at_ns)` in dispatch order.
    dispatches: Vec<(u32, u64, bool, u64)>,
    /// `(stream, seq)` in reclaim order.
    drops: Vec<(u32, u64)>,
    /// `(sent_on_time, sent_late, dropped, violations)` per stream.
    stats: Vec<(u64, u64, u64, u64)>,
}

/// Run the script through the host engine's service core on a virtual
/// clock, with payloads in a real frame pool and a collecting sink.
fn run_host_engine(cfg: SchedulerConfig) -> Outcome {
    let pool = FramePool::new(64, 1024);
    let clock = EngineClock::virtual_clock();
    let (sink, records, drops) = CollectSink::shared(clock.clone());
    let mut svc = host_sched_core(cfg, clock.clone(), pool.clone(), Box::new(sink));

    let streams = script();
    let sids: Vec<_> = streams
        .iter()
        .map(|s| {
            let mut qos = StreamQos::new(s.period, s.loss_num, s.loss_den);
            if !s.droppable {
                qos = qos.send_late();
            }
            svc.open(qos)
        })
        .collect();
    for (si, s) in streams.iter().enumerate() {
        for (seq, &(len, kind)) in s.frames.iter().enumerate() {
            let payload = vec![si as u8; len as usize];
            let slot = pool.store(&payload).expect("pool sized for the script");
            let desc = FrameDesc {
                stream: sids[si],
                seq: seq as u64,
                len,
                kind,
                enqueued_at: 0,
                addr: u64::from(slot),
            };
            svc.ingest_at(sids[si], desc, 0);
        }
    }

    {
        let clock = &clock;
        let svc = std::cell::RefCell::new(&mut svc);
        drive(
            || svc.borrow_mut().next_eligible(),
            |t| {
                clock.set_ns(t);
                svc.borrow_mut().service_once();
            },
            || svc.borrow().has_pending(),
        );
    }

    let dispatches = records
        .lock()
        .iter()
        .map(|r| (r.stream.0, r.seq, r.on_time, r.at_ns))
        .collect();
    let drops = drops.lock().iter().map(|d| (d.stream.0, d.seq)).collect();
    Outcome {
        dispatches,
        drops,
        stats: sids
            .iter()
            .map(|&sid| {
                let s = svc.scheduler().stats(sid);
                (s.sent_on_time, s.sent_late, s.dropped, s.violations)
            })
            .collect(),
    }
}

/// Run the same script through the DVCM media-scheduler extension:
/// streams opened and descriptors injected via VCM instructions,
/// dispatches drained from the NI outbox, drops from the reclaim log.
fn run_ni_extension(cfg: SchedulerConfig) -> Outcome {
    let mut ext = MediaSchedExt::with_config(8, cfg);

    let streams = script();
    let sids: Vec<_> = streams
        .iter()
        .map(|s| {
            let reply = ext.on_instruction(
                VcmInstruction::OpenStream(StreamSpec {
                    period: s.period,
                    loss_num: s.loss_num,
                    loss_den: s.loss_den,
                    droppable: s.droppable,
                }),
                0,
            );
            assert_eq!(reply.status, 0, "admission");
            nistream::dwcs::StreamId(reply.payload[0])
        })
        .collect();
    let mut addr = 0x9000_0000u64;
    for (si, s) in streams.iter().enumerate() {
        for &(len, kind) in &s.frames {
            let reply = ext.on_instruction(
                VcmInstruction::EnqueueFrame {
                    stream: sids[si],
                    addr,
                    len,
                    kind,
                },
                0,
            );
            assert_eq!(reply.status, 0, "enqueue");
            addr += u64::from(len);
        }
    }

    let mut dispatches = Vec::new();
    {
        let ext = std::cell::RefCell::new(&mut ext);
        let dispatches = std::cell::RefCell::new(&mut dispatches);
        drive(
            || ext.borrow_mut().scheduler_mut().next_eligible(),
            |t| {
                ext.borrow_mut().poll_decision(t);
                while let Some(rec) = ext.borrow_mut().pop_dispatch() {
                    dispatches.borrow_mut().push((
                        rec.frame.desc.stream.0,
                        rec.frame.desc.seq,
                        rec.frame.on_time,
                        rec.decided_at,
                    ));
                }
            },
            || ext.borrow().has_pending(),
        );
    }

    Outcome {
        dispatches,
        drops: ext.drain_reclaimed().iter().map(|d| (d.stream.0, d.seq)).collect(),
        stats: sids
            .iter()
            .map(|&sid| {
                let s = ext.scheduler().stats(sid);
                (s.sent_on_time, s.sent_late, s.dropped, s.violations)
            })
            .collect(),
    }
}

/// The script must actually exercise every outcome class, or the
/// conformance assertion would pass vacuously.
fn assert_script_nontrivial(o: &Outcome) {
    assert!(o.dispatches.iter().any(|d| d.2), "script produces on-time sends");
    assert!(o.dispatches.iter().any(|d| !d.2), "script produces late sends");
    assert!(!o.drops.is_empty(), "script produces drops");
    assert!(o.stats.iter().any(|s| s.3 > 0), "script produces violations");
    let total: u64 = o.stats.iter().map(|s| s.0 + s.1 + s.2).sum();
    assert_eq!(total, 36, "every scripted frame is accounted for");
}

#[test]
fn coupled_dispatch_is_placement_invariant() {
    let host = run_host_engine(base_config());
    let ni = run_ni_extension(base_config());
    assert_script_nontrivial(&host);
    assert_eq!(
        host.dispatches, ni.dispatches,
        "dispatch order, timestamps, on-time flags"
    );
    assert_eq!(host.drops, ni.drops, "dropped-frame set and reclaim order");
    assert_eq!(host.stats, ni.stats, "per-stream service statistics");
}

#[test]
fn decoupled_dispatch_is_placement_invariant() {
    let host = run_host_engine(decoupled_config());
    let ni = run_ni_extension(decoupled_config());
    assert_script_nontrivial(&host);
    assert_eq!(
        host.dispatches, ni.dispatches,
        "dispatch order, timestamps, on-time flags"
    );
    assert_eq!(host.drops, ni.drops, "dropped-frame set and reclaim order");
    assert_eq!(host.stats, ni.stats, "per-stream service statistics");
}

#[test]
fn dispatch_modes_agree_on_drops_and_violations() {
    // Coupled vs decoupled changes *when* a frame reaches the wire, not
    // which frames survive: the drop set and violation counts are a
    // property of the scheduling analysis alone (paper §3.1.1 separates
    // analysis from dispatch).
    let coupled = run_host_engine(base_config());
    let decoupled = run_host_engine(decoupled_config());
    let sort = |mut v: Vec<(u32, u64)>| {
        v.sort_unstable();
        v
    };
    assert_eq!(sort(coupled.drops), sort(decoupled.drops));
    assert_eq!(
        coupled.stats.iter().map(|s| s.3).collect::<Vec<_>>(),
        decoupled.stats.iter().map(|s| s.3).collect::<Vec<_>>(),
    );
}
