//! Trace determinism: serialized traces are a function of the seed.
//!
//! The whole-server simulations are seeded and deterministic; with the
//! tracing layer attached that promise extends to the serialized event
//! stream — same configuration, same seed, same bytes. This is what
//! makes golden traces usable as regression anchors: a diff in the JSON
//! is a diff in scheduler behavior, never run-to-run noise.

use nistream::serversim::hostload::{self, HostLoadConfig};
use nistream::trace::{is_schema_valid, to_json, TraceEvent};
use nistream_bench::{ni_run_traced, RUN_SECS};
use simkit::SimDuration;
use workload::mpegclient::ClientPlan;
use workload::profile::LoadProfile;

/// A loaded 30 s host run (the seed steers the web-request arrivals that
/// contend with the DWCS process, so it genuinely reaches the trace).
fn loaded_cfg(seed: u64) -> HostLoadConfig {
    let mut cfg = HostLoadConfig {
        run: SimDuration::from_secs(30),
        frames_per_stream: 900,
        plan: ClientPlan::two_streams(30),
        trace_capacity: 1 << 16,
        seed,
        ..HostLoadConfig::default()
    };
    let rate = hostload::web_rate_for(0.85, &cfg);
    cfg.web = LoadProfile::experiment(5, 2, 30, rate);
    cfg
}

fn host_trace_json(seed: u64) -> String {
    let r = hostload::run(loaded_cfg(seed));
    to_json(&[("host 85% web load", &r.trace)])
}

#[test]
fn same_seed_serializes_to_identical_bytes() {
    let a = host_trace_json(7);
    let b = host_trace_json(7);
    assert!(is_schema_valid(&a), "schema-valid document");
    assert!(a.contains(r#""ev":"dispatch""#), "non-empty event stream");
    assert_eq!(a, b, "same seed, same bytes");
}

#[test]
fn different_seeds_serialize_differently() {
    // Under heavy web contention the arrival pattern shifts which passes
    // the DWCS process wins, so the traced schedule must move.
    let a = host_trace_json(7);
    let b = host_trace_json(8);
    assert_ne!(a, b, "the seed reaches the trace");
}

#[test]
fn figure9_trace_replays_bit_for_bit() {
    // The same run `repro_figure9 --trace` performs, twice: the NI
    // pipeline is seed-free by construction (host load cannot reach it),
    // so its serialized trace is bit-stable across invocations.
    let a = ni_run_traced(RUN_SECS);
    let b = ni_run_traced(RUN_SECS);
    let ja = to_json(&[("ni 60% host web load", &a.trace)]);
    let jb = to_json(&[("ni 60% host web load", &b.trace)]);
    assert!(is_schema_valid(&ja));
    assert!(
        a.trace.events.iter().any(|e| matches!(e, TraceEvent::Dispatch { .. })),
        "non-empty"
    );
    assert_eq!(ja, jb, "bit-for-bit replay");
}
