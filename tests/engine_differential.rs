//! Differential test: the timing-wheel [`Engine`] against the retired
//! binary-heap executive [`HeapEngine`] (kept in `simkit::reference` as
//! the oracle for exactly this test).
//!
//! Both executives are driven with an identical random operation script —
//! schedules across the wheel's levels and past its overflow horizon,
//! same-instant bursts, nested scheduling from inside events, cancels of
//! pending and already-fired events, `run_until` boundary advances — and
//! must log byte-identical `(fire_time, tag)` sequences. The `(time, seq)`
//! FIFO-stable firing order is the contract every saved repro baseline
//! rests on.

use nistream::simkit::{Engine, HeapEngine, SimDuration, SimTime};
use proptest::prelude::*;

/// The wheel horizon is 2^36 ns (~68.7 s); `Far` schedules land beyond it.
const HORIZON_NS: u64 = 1 << 36;

/// One step of the operation script, applied identically to both engines.
#[derive(Clone, Debug)]
enum Op {
    /// Schedule at `t`; if `nested` is set, the event schedules a
    /// follow-up `nested` ns after it fires.
    At { t: u64, nested: Option<u64> },
    /// `n` events at the same instant (FIFO order must hold among them).
    Burst { t: u64, n: u8 },
    /// Cancel the `k % ids.len()`-th id handed out so far (which may be
    /// pending, already fired, or already cancelled — all must behave
    /// identically, and the two latter identically to a no-op).
    Cancel { k: usize },
    /// Schedule past the wheel horizon (overflow-heap path).
    Far { t: u64 },
    /// Advance both engines to `t` (exercises `run_until` boundaries and
    /// makes later `Cancel`s hit fired events).
    RunUntil { t: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..50_000_000, 0u64..4_000_000)
            .prop_map(|(t, d)| Op::At { t, nested: (d > 0).then_some(d) }),
        2 => (0u64..50_000_000, 2u8..6).prop_map(|(t, n)| Op::Burst { t, n }),
        2 => (0usize..64).prop_map(|k| Op::Cancel { k }),
        1 => (HORIZON_NS..HORIZON_NS + 60_000_000_000).prop_map(|t| Op::Far { t }),
        1 => (0u64..60_000_000).prop_map(|t| Op::RunUntil { t }),
    ]
}

/// Fired-event log: `(fire_time_ns, tag)`. Tags are assigned in op order,
/// identically for both engines; nested follow-ups get `tag + 1_000_000`.
type Log = Vec<(u64, u32)>;

macro_rules! driver {
    ($name:ident, $engine:ty) => {
        fn $name(ops: &[Op]) -> Log {
            type E = $engine;
            let mut e: E = <E>::new();
            let mut w: Log = Vec::new();
            let mut ids = Vec::new();
            let mut tag: u32 = 0;
            for op in ops {
                match *op {
                    Op::At { t, nested } => {
                        let my = tag;
                        tag += 1;
                        // Scheduling in the past is a contract violation
                        // (debug_assert in both engines); clamp to `now`
                        // when a prior RunUntil has advanced past `t`.
                        let at = SimTime::from_nanos(t).max(e.now());
                        ids.push(e.schedule_at(at, move |w: &mut Log, e: &mut E| {
                            w.push((e.now().as_nanos(), my));
                            if let Some(d) = nested {
                                e.schedule_in(SimDuration::from_nanos(d), move |w: &mut Log, e: &mut E| {
                                    w.push((e.now().as_nanos(), my + 1_000_000));
                                });
                            }
                        }));
                    }
                    Op::Burst { t, n } => {
                        let at = SimTime::from_nanos(t).max(e.now());
                        for _ in 0..n {
                            let my = tag;
                            tag += 1;
                            ids.push(e.schedule_at(at, move |w: &mut Log, e: &mut E| {
                                w.push((e.now().as_nanos(), my));
                            }));
                        }
                    }
                    Op::Cancel { k } => {
                        if !ids.is_empty() {
                            e.cancel(ids[k % ids.len()]);
                        }
                    }
                    Op::Far { t } => {
                        let my = tag;
                        tag += 1;
                        ids.push(
                            e.schedule_at(SimTime::from_nanos(t), move |w: &mut Log, e: &mut E| {
                                w.push((e.now().as_nanos(), my));
                            }),
                        );
                    }
                    Op::RunUntil { t } => e.run_until(&mut w, SimTime::from_nanos(t)),
                }
            }
            e.run(&mut w);
            w
        }
    };
}

driver!(drive_wheel, Engine<Log>);
driver!(drive_heap, HeapEngine<Log>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn wheel_fires_identically_to_the_heap_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        let wheel = drive_wheel(&ops);
        let heap = drive_heap(&ops);
        prop_assert_eq!(&wheel, &heap, "fired sequences diverged for ops {:?}", ops);
        // Shared sanity: the common log is (time, tag)-ordered per the
        // FIFO-stability contract.
        for pair in wheel.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order violated");
        }
    }

    #[test]
    fn wheel_and_heap_agree_on_pending_counts_under_cancel(
        times in proptest::collection::vec(0u64..1_000_000, 1..60),
        cancels in proptest::collection::vec(0usize..60, 0..30)
    ) {
        let mut wheel: Engine<Log> = Engine::new();
        let mut heap: HeapEngine<Log> = HeapEngine::new();
        let mut wheel_ids = Vec::new();
        let mut heap_ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let tag = i as u32;
            wheel_ids.push(wheel.schedule_at(SimTime::from_nanos(t), move |w: &mut Log, e: &mut Engine<Log>| {
                w.push((e.now().as_nanos(), tag));
            }));
            heap_ids.push(heap.schedule_at(SimTime::from_nanos(t), move |w: &mut Log, e: &mut HeapEngine<Log>| {
                w.push((e.now().as_nanos(), tag));
            }));
        }
        for &k in &cancels {
            wheel.cancel(wheel_ids[k % wheel_ids.len()]);
            heap.cancel(heap_ids[k % heap_ids.len()]);
            prop_assert_eq!(wheel.pending(), heap.pending(), "pending diverged after cancel");
        }
        let (mut lw, mut lh) = (Vec::new(), Vec::new());
        wheel.run(&mut lw);
        heap.run(&mut lh);
        prop_assert_eq!(lw, lh);
        prop_assert_eq!(wheel.pending(), 0);
        prop_assert_eq!(heap.pending(), 0);
    }
}
