//! The fixed-point story, end to end: identical scheduler executions
//! metered under the two arithmetic builds produce different op-class
//! profiles, and the i960 cost tables price the soft-float build ~20 µs
//! per decision slower — Tables 1–2's mechanism, verifiable in isolation.

use nistream::dwcs::types::MILLISECOND;
use nistream::dwcs::{DualHeap, DwcsScheduler, FrameDesc, FrameKind, StreamQos};
use nistream::fixedpt::ops::{MathMode, OpKind, OpMeter};
use nistream::hwsim::calib;
use std::sync::Arc;

fn run_metered(mode: MathMode) -> Arc<OpMeter> {
    let meter = Arc::new(OpMeter::new(mode));
    let mut s = DwcsScheduler::new(DualHeap::new(4));
    s.set_meter(Arc::clone(&meter));
    let sids: Vec<_> = (0..3)
        .map(|i| s.add_stream(StreamQos::new((10 + i) * MILLISECOND, 2, 8)))
        .collect();
    for seq in 0..40u64 {
        for &sid in &sids {
            s.enqueue(sid, FrameDesc::new(sid, seq, 1000, FrameKind::P), 0);
        }
    }
    let mut t = 0;
    while s.has_pending() {
        let _ = s.schedule_next(t);
        t += MILLISECOND;
    }
    meter
}

#[test]
fn builds_produce_disjoint_op_classes() {
    let fixed = run_metered(MathMode::FixedPoint);
    let float = run_metered(MathMode::SoftFloat);

    // Fixed build: integer multiplies + shifts, zero float ops.
    assert!(fixed.count(OpKind::IntMul) > 0, "cross-multiply compares");
    assert!(fixed.count(OpKind::Shift) > 0, "shift divides");
    assert_eq!(fixed.count(OpKind::FloatAlu), 0);
    assert_eq!(fixed.count(OpKind::FloatDiv), 0);

    // Float build: the same logical ops land in the FP classes.
    assert!(float.count(OpKind::FloatAlu) > 0);
    assert!(float.count(OpKind::FloatDiv) > 0);
    assert_eq!(float.count(OpKind::IntMul), 0, "no cross-multiplies in FP build");

    // The *logical* work is identical — only the lowering differs:
    //   compares:   fixed -> IntMul,  float -> FloatAlu
    //   updates:    fixed -> IntAlu,  float -> FloatAlu
    //   divides:    fixed -> Shift,   float -> FloatDiv
    //   counters:   IntAlu in both
    let fixed_updates = fixed.count(OpKind::IntAlu) - float.count(OpKind::IntAlu);
    assert_eq!(
        float.count(OpKind::FloatAlu),
        fixed.count(OpKind::IntMul) + fixed_updates,
        "float ALU ops = compares + window updates"
    );
    assert_eq!(fixed.count(OpKind::Shift), float.count(OpKind::FloatDiv));
    assert_eq!(fixed.count(OpKind::MemTouch), float.count(OpKind::MemTouch));
}

#[test]
fn pricing_the_profiles_reproduces_the_fp_penalty() {
    let fixed = run_metered(MathMode::FixedPoint);
    let float = run_metered(MathMode::SoftFloat);

    // Price each profile with the i960 tables (cycles per class).
    let price = |m: &OpMeter| -> u64 {
        m.count(OpKind::IntAlu)
            + m.count(OpKind::IntMul) * calib::FIXED_RATIO_CYCLES
            + m.count(OpKind::Shift) * calib::FIXED_RATIO_CYCLES
            + m.count(OpKind::FloatAlu) * calib::SOFT_FP_RATIO_CYCLES
            + m.count(OpKind::FloatDiv) * calib::SOFT_FP_RATIO_CYCLES
    };
    let fixed_cycles = price(&fixed);
    let float_cycles = price(&float);
    assert!(
        float_cycles > fixed_cycles * 3,
        "soft-FP arithmetic dominates: {float_cycles} vs {fixed_cycles}"
    );

    // Per decision, the difference lands in Tables 1-2's ~20 µs at 66 MHz.
    let decisions = 120.0; // 3 streams × 40 frames
    let delta_us = (float_cycles - fixed_cycles) as f64 / decisions / 66.0;
    assert!(
        (5.0..=60.0).contains(&delta_us),
        "per-decision FP penalty {delta_us:.1} µs"
    );
}

#[test]
fn meter_reset_and_snapshot() {
    let meter = run_metered(MathMode::FixedPoint);
    let snap = meter.snapshot();
    assert_eq!(snap.iter().sum::<u64>(), meter.total());
    meter.reset();
    assert_eq!(meter.total(), 0);
}
