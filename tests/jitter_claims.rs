//! §4.2.3's jitter claims, asserted:
//!
//! * "Frames are serviced at a rate with lower variability" on the NI —
//!   NI-based streams show near-zero inter-departure jitter regardless of
//!   host load.
//! * On the loaded host, "variation in the rate at which the scheduler
//!   receives CPU may increase delay-jitter … leading to jitter in frame
//!   inter-arrival times" — host-based jitter grows by orders of
//!   magnitude under load.

use nistream::serversim::hostload::{self, HostLoadConfig};
use nistream::serversim::niload::{self, NiLoadConfig};
use nistream::simkit::SimDuration;
use nistream::workload::mpegclient::ClientPlan;
use nistream::workload::profile::LoadProfile;

fn host_cfg(loaded: bool) -> HostLoadConfig {
    let mut cfg = HostLoadConfig {
        run: SimDuration::from_secs(30),
        frames_per_stream: 900,
        plan: ClientPlan::two_streams(30),
        ..HostLoadConfig::default()
    };
    if loaded {
        let rate = hostload::web_rate_for(0.9, &cfg);
        cfg.web = LoadProfile::experiment(5, 2, 30, rate);
    }
    cfg
}

#[test]
fn unloaded_host_scheduler_paces_with_low_jitter() {
    let r = hostload::run(host_cfg(false));
    for s in &r.streams {
        assert!(
            s.mean_jitter_ms < 2.0,
            "{}: unloaded jitter {:.3} ms should be small",
            s.name,
            s.mean_jitter_ms
        );
    }
}

#[test]
fn loaded_host_scheduler_jitter_explodes() {
    let quiet = hostload::run(host_cfg(false));
    let loaded = hostload::run(host_cfg(true));
    for (q, l) in quiet.streams.iter().zip(&loaded.streams) {
        assert!(
            l.mean_jitter_ms > q.mean_jitter_ms * 5.0,
            "{}: loaded {:.3} ms vs quiet {:.3} ms",
            l.name,
            l.mean_jitter_ms,
            q.mean_jitter_ms
        );
        assert!(l.mean_jitter_ms > 5.0, "{}: {:.3} ms", l.name, l.mean_jitter_ms);
    }
}

#[test]
fn ni_scheduler_jitter_is_load_independent_and_tiny() {
    let mk = |loaded: bool| {
        let mut cfg = NiLoadConfig {
            run: SimDuration::from_secs(30),
            frames_per_stream: 900,
            plan: ClientPlan::two_streams(30),
            ..NiLoadConfig::default()
        };
        if loaded {
            cfg.host_web = LoadProfile::experiment(5, 2, 30, 500.0);
        }
        niload::run(cfg)
    };
    let quiet = mk(false);
    let loaded = mk(true);
    for (q, l) in quiet.streams.iter().zip(&loaded.streams) {
        assert_eq!(
            q.mean_jitter_ms, l.mean_jitter_ms,
            "{}: NI jitter must be identical under host load",
            q.name
        );
        assert!(
            q.mean_jitter_ms < 1.0,
            "{}: NI jitter {:.3} ms",
            q.name,
            q.mean_jitter_ms
        );
    }
    // And far below the loaded host's.
    let host_loaded = hostload::run(host_cfg(true));
    assert!(
        loaded.streams[0].mean_jitter_ms * 5.0 < host_loaded.streams[0].mean_jitter_ms,
        "NI {:.3} ms ≪ host-under-load {:.3} ms",
        loaded.streams[0].mean_jitter_ms,
        host_loaded.streams[0].mean_jitter_ms
    );
}
