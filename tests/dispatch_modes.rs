//! §3.1.1's coupled-vs-decoupled trade, verified behaviourally: decoupled
//! dispatch adds queuing delay and jitter ("packets do not suffer
//! additional queuing delay and jitter in dispatch queues" under coupling)
//! while allowing decisions to run ahead of the dispatcher.

use nistream::dwcs::types::MILLISECOND;
use nistream::dwcs::{DispatchMode, DualHeap, DwcsScheduler, FrameDesc, FrameKind, SchedulerConfig, StreamQos};

fn feed(s: &mut DwcsScheduler<DualHeap>, sid: nistream::dwcs::StreamId, n: u64) {
    for seq in 0..n {
        s.enqueue(sid, FrameDesc::new(sid, seq, 1000, FrameKind::P), 0);
    }
}

#[test]
fn decoupled_adds_dispatch_queue_delay() {
    let period = 10 * MILLISECOND;

    // Coupled: decision == dispatch at each deadline.
    let mut coupled = DwcsScheduler::with_config(
        DualHeap::new(2),
        SchedulerConfig {
            pacing: nistream::dwcs::scheduler::Pacing::DeadlinePaced,
            ..SchedulerConfig::default()
        },
    );
    let c_sid = coupled.add_stream(StreamQos::new(period, 2, 8));
    feed(&mut coupled, c_sid, 50);
    while coupled.has_pending() {
        let t = coupled.next_eligible().unwrap();
        let _ = coupled.schedule_next(t);
    }
    let coupled_delay = coupled.stats(c_sid).mean_queue_delay();

    // Decoupled: decisions at deadlines, dispatcher drains 5 ms later.
    let mut dec = DwcsScheduler::with_config(
        DualHeap::new(2),
        SchedulerConfig {
            pacing: nistream::dwcs::scheduler::Pacing::DeadlinePaced,
            dispatch: DispatchMode::Decoupled { queue_cap: 64 },
            ..SchedulerConfig::default()
        },
    );
    let d_sid = dec.add_stream(StreamQos::new(period, 2, 8));
    feed(&mut dec, d_sid, 50);
    let dispatcher_lag = 5 * MILLISECOND;
    while dec.has_pending() {
        match dec.next_eligible() {
            Some(t) => {
                let _ = dec.schedule_next(t);
                // Dispatcher runs behind the decision clock.
                while dec.pop_dispatch(t + dispatcher_lag).is_some() {}
            }
            None => {
                while dec.pop_dispatch(0).is_some() {}
                break;
            }
        }
    }
    let decoupled_delay = dec.stats(d_sid).mean_queue_delay();

    assert_eq!(coupled.stats(c_sid).sent(), 50);
    assert_eq!(dec.stats(d_sid).sent(), 50);
    assert!(
        decoupled_delay >= coupled_delay + dispatcher_lag - MILLISECOND,
        "decoupled {decoupled_delay} vs coupled {coupled_delay} (+lag expected)"
    );
}

#[test]
fn decoupled_decisions_run_ahead_of_the_dispatcher() {
    // With a dispatch queue the scheduler can make a burst of decisions
    // without waiting for transmissions; coupled mode inherently cannot
    // (the caller holds the frame between decisions).
    let mut dec = DwcsScheduler::with_config(
        DualHeap::new(2),
        SchedulerConfig {
            dispatch: DispatchMode::Decoupled { queue_cap: 16 },
            ..SchedulerConfig::default()
        },
    );
    let sid = dec.add_stream(StreamQos::new(MILLISECOND, 2, 8));
    feed(&mut dec, sid, 10);
    for _ in 0..10 {
        let d = dec.schedule_next(0);
        assert!(d.frame.is_none(), "frames are queued, not returned");
    }
    assert_eq!(dec.dispatch_backlog(), 10, "10 decisions ran ahead");
    let mut drained = 0;
    while dec.pop_dispatch(5 * MILLISECOND).is_some() {
        drained += 1;
    }
    assert_eq!(drained, 10);
}

#[test]
fn decoupled_queue_cap_forces_direct_dispatch() {
    let mut dec = DwcsScheduler::with_config(
        DualHeap::new(2),
        SchedulerConfig {
            dispatch: DispatchMode::Decoupled { queue_cap: 2 },
            ..SchedulerConfig::default()
        },
    );
    let sid = dec.add_stream(StreamQos::new(MILLISECOND, 2, 8));
    feed(&mut dec, sid, 3);
    assert!(dec.schedule_next(0).frame.is_none());
    assert!(dec.schedule_next(0).frame.is_none());
    // Queue full: the third decision dispatches directly.
    let d = dec.schedule_next(0);
    assert!(d.frame.is_some(), "over-cap decision dispatches inline");
    assert_eq!(dec.dispatch_backlog(), 2);
}
