//! Properties of the substrate executives.
//!
//! * `simkit::Engine` fires events in nondecreasing time order, FIFO among
//!   equal times, for arbitrary schedules (including events scheduled from
//!   inside events).
//! * `vxkit::Kernel` always runs the highest-priority ready task.

use nistream::simkit::{Engine, SimDuration, SimTime};
use nistream::vxkit::kernel::{Kernel, KernelConfig, KernelEvent};
use nistream::vxkit::task::{FnTask, StepResult};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Default)]
struct World {
    fired: Vec<(u64, usize)>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn engine_fires_in_time_then_fifo_order(times in proptest::collection::vec(0u64..10_000, 1..80)) {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for (i, &t) in times.iter().enumerate() {
            eng.schedule_at(SimTime::from_nanos(t), move |w: &mut World, e| {
                w.fired.push((e.now().as_nanos(), i));
            });
        }
        eng.run(&mut w);
        prop_assert_eq!(w.fired.len(), times.len());
        // Nondecreasing times; equal times in scheduling (index) order.
        for pair in w.fired.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO among equals");
            }
        }
    }

    #[test]
    fn engine_nested_scheduling_preserves_order(seed_times in proptest::collection::vec(1u64..1_000, 1..30)) {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for (i, &t) in seed_times.iter().enumerate() {
            eng.schedule_at(SimTime::from_nanos(t), move |_w: &mut World, e| {
                // Each event schedules a follow-up half its delay later.
                e.schedule_in(SimDuration::from_nanos(t / 2 + 1), move |w: &mut World, e| {
                    w.fired.push((e.now().as_nanos(), i));
                });
            });
        }
        eng.run(&mut w);
        prop_assert_eq!(w.fired.len(), seed_times.len());
        for pair in w.fired.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
        }
    }

    #[test]
    fn kernel_always_runs_highest_priority_ready(prios in proptest::collection::vec(0u8..=255, 2..24)) {
        let mut k = Kernel::new(KernelConfig::default());
        let log: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        for &p in &prios {
            let log = Rc::clone(&log);
            k.spawn(
                p,
                Box::new(FnTask::new(format!("t{p}"), move |_| {
                    log.borrow_mut().push(p);
                    StepResult::Exit { cycles: 10 }
                })),
            );
        }
        while k.step() != KernelEvent::Idle {}
        let order = log.borrow();
        prop_assert_eq!(order.len(), prios.len());
        // Every task ran exactly once, in nondecreasing priority number
        // (0 = highest), stably for equals.
        let mut sorted = prios.clone();
        sorted.sort();
        prop_assert_eq!(&*order, &sorted);
    }
}
