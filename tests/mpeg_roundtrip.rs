//! Property: segmenting any synthesized MPEG-1 stream recovers exactly
//! the frames the encoder emitted — kinds, offsets, temporal references —
//! for arbitrary GOP structures, rates and seeds.

use nistream::mpeg1::{EncoderConfig, GopPattern, PictureKind, Segmenter, SyntheticEncoder};
use proptest::prelude::*;

fn gop_strategy() -> impl Strategy<Value = GopPattern> {
    proptest::collection::vec(prop_oneof![Just('P'), Just('B'), Just('I')], 0..11).prop_map(|tail| {
        let s: String = std::iter::once('I').chain(tail).collect();
        s.parse().expect("starts with I")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_recovers_exact_frames(
        gop in gop_strategy(),
        frames in 1usize..60,
        bitrate in 200_000u64..4_000_000,
        seed in any::<u64>(),
    ) {
        let cfg = EncoderConfig {
            gop: gop.clone(),
            bitrate,
            seed,
            ..EncoderConfig::default()
        };
        let (bytes, truth) = SyntheticEncoder::new(cfg).encode(frames);
        let parsed = Segmenter::new(&bytes).segment_all().unwrap();
        prop_assert_eq!(parsed.len(), truth.len());
        for (p, t) in parsed.iter().zip(&truth) {
            prop_assert_eq!(p.kind, t.kind);
            prop_assert_eq!(p.offset, t.offset);
            prop_assert_eq!(p.temporal_ref, t.temporal_ref);
        }
        // Kind sequence follows the GOP pattern cyclically.
        for (i, p) in parsed.iter().enumerate() {
            prop_assert_eq!(p.kind, gop.kind_at(i % gop.len()));
        }
    }

    #[test]
    fn truncation_never_panics(
        frames in 1usize..20,
        cut_fraction in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let cfg = EncoderConfig { seed, ..EncoderConfig::default() };
        let (bytes, _) = SyntheticEncoder::new(cfg).encode(frames);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        // Must never panic; may error on a torn picture header.
        let _ = Segmenter::new(&bytes[..cut]).segment_all();
    }

    #[test]
    fn profile_counts_are_consistent(frames in 1usize..40, seed in any::<u64>()) {
        let cfg = EncoderConfig { seed, ..EncoderConfig::default() };
        let (bytes, _) = SyntheticEncoder::new(cfg).encode(frames);
        let (parsed, profile) = nistream::mpeg1::segment::profile(&bytes).unwrap();
        prop_assert_eq!(profile.frames() as usize, parsed.len());
        let i = parsed.iter().filter(|f| f.kind == PictureKind::I).count() as u64;
        prop_assert_eq!(profile.count_i, i);
        let total: u64 = parsed.iter().map(|f| u64::from(f.len)).sum();
        prop_assert_eq!(profile.total_bytes, total);
    }
}
