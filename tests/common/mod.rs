//! Shared fixtures for the cross-placement suites: the frame script, the
//! jittered drive loop, and the scheduler configurations that
//! `placement_conformance.rs` and `trace_conformance.rs` both run.
#![allow(dead_code)] // each integration test uses its own subset

use nistream::dwcs::scheduler::{DispatchMode, Pacing};
use nistream::dwcs::types::MILLISECOND;
use nistream::dwcs::{FrameKind, SchedulerConfig};

/// One scripted stream: QoS plus per-frame (len, kind).
pub struct ScriptStream {
    pub period: u64,
    pub loss_num: u32,
    pub loss_den: u32,
    pub droppable: bool,
    pub frames: Vec<(u32, FrameKind)>,
}

/// The shared script: three streams whose QoS mix is deliberately
/// infeasible under the jittered polling below, so the run produces
/// on-time sends, late sends, window violations AND dropped frames.
pub fn script() -> Vec<ScriptStream> {
    let kind_of = |k: usize| match k % 9 {
        0 => FrameKind::I,
        3 | 6 => FrameKind::P,
        _ => FrameKind::B,
    };
    let frames = |n: usize, base: u32| (0..n).map(|k| (base + 37 * (k as u32 % 7), kind_of(k))).collect();
    vec![
        // Tolerant video: 1 loss per window of 2, droppable.
        ScriptStream {
            period: 10 * MILLISECOND,
            loss_num: 1,
            loss_den: 2,
            droppable: true,
            frames: frames(12, 400),
        },
        // Strict telemetry: no losses allowed, late frames sent anyway —
        // the violation source.
        ScriptStream {
            period: 5 * MILLISECOND,
            loss_num: 0,
            loss_den: 1,
            droppable: false,
            frames: frames(12, 64),
        },
        // Slow bulk stream: 2 losses per window of 4, droppable.
        ScriptStream {
            period: 20 * MILLISECOND,
            loss_num: 2,
            loss_den: 4,
            droppable: true,
            frames: frames(12, 700),
        },
    ]
}

/// Poll-time jitter past each head deadline, cycled per decision. The
/// large entries push polls far past deadlines to force drops (droppable
/// streams) and violations (send-late streams).
pub const JITTER: [u64; 8] = [
    0,
    2 * MILLISECOND,
    0,
    12 * MILLISECOND,
    MILLISECOND,
    0,
    30 * MILLISECOND,
    3 * MILLISECOND,
];

/// Coupled-dispatch scheduler configuration shared by every placement.
pub fn base_config() -> SchedulerConfig {
    SchedulerConfig {
        pacing: Pacing::DeadlinePaced,
        ..SchedulerConfig::default()
    }
}

/// Decoupled-dispatch variant (bounded NI outbox).
pub fn decoupled_config() -> SchedulerConfig {
    SchedulerConfig {
        dispatch: DispatchMode::Decoupled { queue_cap: 2 },
        ..base_config()
    }
}

/// The shared drive loop: poll at each head deadline plus cycling jitter
/// until the backlog drains. `next` and `pass` are the only
/// placement-specific hooks.
pub fn drive(mut next: impl FnMut() -> Option<u64>, mut pass: impl FnMut(u64), mut pending: impl FnMut() -> bool) {
    let mut i = 0usize;
    let mut guard = 0u32;
    let mut t = 0u64;
    while let Some(d) = next() {
        guard += 1;
        assert!(guard < 10_000, "drive loop runaway");
        t = t.max(d + JITTER[i % JITTER.len()]);
        i += 1;
        pass(t);
    }
    // Decoupled mode can leave paced frames in the dispatch queue after
    // the stream queues empty; drain them on a widening clock.
    while pending() {
        guard += 1;
        assert!(guard < 10_000, "drain loop runaway");
        t += 5 * MILLISECOND;
        pass(t);
    }
}
