//! Baseline gate for the parallel sweep runner: one figure reproduction
//! (Figure 6's three-load-level host sweep, traced) executed through
//! `par_sweep_with` at 1 thread (the sequential reference path) and at 4
//! threads must publish byte-identical series renderings *and* a
//! byte-identical `nistream-trace/v1` JSON document. This is the
//! determinism contract `bench::sweep` documents: thread count is a
//! performance knob only.

use nistream_bench::{host_run_traced, par_sweep_with, render_series, Cell, HOST_LEVELS, RUN_SECS};
use serversim::hostload::HostLoadResult;
use std::fmt::Write as _;

/// Run the Figure 6 sweep on `threads` threads and render everything the
/// binary publishes: the per-level summary + series, and the trace JSON.
fn run_figure6(threads: usize) -> (String, String) {
    let cells: Vec<Cell<'static, HostLoadResult>> = HOST_LEVELS
        .iter()
        .map(|&level| -> Cell<'static, HostLoadResult> { Box::new(move || host_run_traced(level, RUN_SECS)) })
        .collect();
    let results = par_sweep_with(threads, cells);
    assert_eq!(results.len(), HOST_LEVELS.len());

    let mut published = String::new();
    let mut captures = Vec::new();
    for (level, r) in HOST_LEVELS.iter().zip(&results) {
        let _ = writeln!(
            published,
            "--- {} ---\n  average utilization: {:>5.1} %   peak: {:>5.1} %",
            level.label(),
            r.avg_util,
            r.peak_util
        );
        published.push_str(&render_series("total CPU util", &r.cpu_util, "%", 20));
        captures.push((level.label(), &r.trace));
    }
    let json = nistream::core::report::trace_to_json(&captures);
    (published, json)
}

#[test]
fn one_and_four_thread_sweeps_publish_identical_bytes() {
    let (seq_out, seq_json) = run_figure6(1);
    let (par_out, par_json) = run_figure6(4);
    assert!(!seq_out.is_empty() && !seq_json.is_empty());
    assert_eq!(seq_out, par_out, "rendered series diverged across thread counts");
    assert_eq!(seq_json, par_json, "trace documents diverged across thread counts");
}
