//! Property: all five schedule representations implement the same
//! observable order — random head-update/remove/pop sequences must pop in
//! exactly the order LinearScan (the firmware-faithful reference) does.

use nistream::dwcs::{BTreeRepr, CalendarQueue, DualHeap, HeadKey, LinearScan, ScheduleRepr, SortedList, StreamId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Update { sid: u8, deadline: u64, x: u8, y: u8 },
    Remove { sid: u8 },
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..24, 0u64..500_000, 0u8..8, 1u8..9).prop_map(|(sid, deadline, x, y)| Op::Update {
            sid,
            deadline,
            x: x.min(y),
            y,
        }),
        1 => (0u8..24).prop_map(|sid| Op::Remove { sid }),
        3 => Just(Op::Pop),
    ]
}

fn apply(repr: &mut dyn ScheduleRepr, ops: &[Op]) -> Vec<Option<u32>> {
    let mut arrivals = 0u64;
    let mut log = Vec::new();
    for op in ops {
        match *op {
            Op::Update { sid, deadline, x, y } => {
                arrivals += 1;
                repr.update(
                    StreamId(u32::from(sid)),
                    HeadKey {
                        deadline,
                        x: u32::from(x),
                        y: u32::from(y),
                        arrival: arrivals,
                    },
                );
            }
            Op::Remove { sid } => repr.remove(StreamId(u32::from(sid))),
            Op::Pop => log.push(repr.pop_min().map(|(sid, _)| sid.0)),
        }
    }
    // Drain the rest.
    while let Some((sid, _)) = repr.pop_min() {
        log.push(Some(sid.0));
    }
    log.push(None);
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn all_representations_agree(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut reference = LinearScan::new(24);
        let expected = apply(&mut reference, &ops);

        let mut others: Vec<Box<dyn ScheduleRepr>> = vec![
            Box::new(SortedList::new()),
            Box::new(DualHeap::new(24)),
            Box::new(BTreeRepr::new()),
            Box::new(CalendarQueue::new(10_000, 8)),
        ];
        for r in &mut others {
            let got = apply(r.as_mut(), &ops);
            prop_assert_eq!(&got, &expected, "repr {} diverged", r.name());
        }
    }

    #[test]
    fn len_is_consistent_across_reprs(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut reprs: Vec<Box<dyn ScheduleRepr>> = vec![
            Box::new(LinearScan::new(24)),
            Box::new(SortedList::new()),
            Box::new(DualHeap::new(24)),
            Box::new(BTreeRepr::new()),
            Box::new(CalendarQueue::new(10_000, 8)),
        ];
        let mut arrivals = 0u64;
        for op in &ops {
            for r in &mut reprs {
                match *op {
                    Op::Update { sid, deadline, x, y } => {
                        r.update(StreamId(u32::from(sid)), HeadKey {
                            deadline,
                            x: u32::from(x),
                            y: u32::from(y),
                            arrival: arrivals,
                        });
                    }
                    Op::Remove { sid } => r.remove(StreamId(u32::from(sid))),
                    Op::Pop => {
                        r.pop_min();
                    }
                }
            }
            if let Op::Update { .. } = op {
                arrivals += 1;
            }
            let lens: Vec<usize> = reprs.iter().map(|r| r.len()).collect();
            prop_assert!(lens.windows(2).all(|w| w[0] == w[1]), "lens {lens:?}");
        }
    }
}
