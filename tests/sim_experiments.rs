//! Integration: the simulated experiments hold their paper-shape
//! invariants when driven through the public crate surface.

use nistream::serversim::{cluster, micro, niload, paths};
use nistream::simkit::SimDuration;
use nistream::workload::mpegclient::ClientPlan;

#[test]
fn microbenchmark_orderings_hold_across_all_cells() {
    let (t1_float, t1_fixed) = micro::table1();
    let (t2_float, t2_fixed) = micro::table2();
    let t3 = micro::table3();

    // Fixed beats float in both cache settings.
    assert!(t1_fixed.avg_sched_us < t1_float.avg_sched_us);
    assert!(t2_fixed.avg_sched_us < t2_float.avg_sched_us);
    // Cache-on beats cache-off for both builds.
    assert!(t2_fixed.avg_sched_us < t1_fixed.avg_sched_us);
    assert!(t2_float.avg_sched_us < t1_float.avg_sched_us);
    // Hardware queues ≈ cached pinned memory (within 10 µs).
    assert!((t3.avg_sched_us - t2_fixed.avg_sched_us).abs() < 10.0);
    // The dispatch-only loop is always far cheaper than scheduling.
    for r in [&t1_float, &t1_fixed, &t2_float, &t2_fixed, &t3] {
        assert!(r.avg_nosched_us * 2.0 < r.avg_sched_us);
    }
}

#[test]
fn path_ordering_matches_table4() {
    let cfg = paths::PathConfig::default();
    let ufs = paths::path_a_ufs(&cfg).total_ms;
    let vxfs = paths::path_a_vxfs(&cfg).total_ms;
    let b = paths::path_b(&cfg).total_ms;
    let c = paths::path_c(&cfg).total_ms;
    assert!(ufs < c, "cached host filesystem wins");
    assert!(c < b, "peer-to-peer adds the PCI hop");
    assert!(b < vxfs, "NI paths beat the uncached host filesystem");
    assert!((b - c) * 1000.0 < 25.0, "PCI hop is tens of microseconds");
}

#[test]
fn ni_pipeline_is_deterministic_and_load_blind() {
    let cfg = || niload::NiLoadConfig {
        plan: ClientPlan::two_streams(10),
        frames_per_stream: 300,
        run: SimDuration::from_secs(10),
        ..niload::NiLoadConfig::default()
    };
    let a = niload::run(cfg());
    let b = niload::run(cfg());
    assert_eq!(a.streams[0].sent, b.streams[0].sent);
    assert_eq!(a.streams[0].qdelay, b.streams[0].qdelay);
    assert!(a.mean_decision_us > 40.0 && a.mean_decision_us < 90.0);
}

#[test]
fn cluster_capacity_is_positive_and_bounded() {
    let node = cluster::NodeConfig::default();
    let cap = cluster::node_capacity(&node);
    assert!(cap.node_streams > 0);
    assert!(cap.node_streams <= cap.pci_stream_limit);
    let c = cluster::Cluster::paper_testbed();
    assert_eq!(c.total_streams(), cap.node_streams * 16);
}
