//! Trace conformance: every placement narrates the same schedule.
//!
//! The tracing layer extends the placement-invariance claim pinned by
//! `placement_conformance.rs` from *outcomes* to *event streams*: the
//! host engine's service core, the DVCM media-scheduler extension, and
//! both whole-server simulation bindings (`HostSendPlatform`,
//! `NiWirePlatform`) run the shared frame script with a trace ring
//! attached, and the serialized traces must be byte-identical — same
//! events, same order, same timestamps, regardless of where the
//! scheduler runs or which cost model prices its decisions.

mod common;

use common::{base_config, decoupled_config, drive, script};
use nistream::dvcm::instr::{StreamSpec, VcmInstruction};
use nistream::dvcm::{ExtensionModule, MediaSchedExt};
use nistream::dwcs::svc::{Platform, SchedService};
use nistream::dwcs::{DualHeap, FrameDesc, SchedulerConfig, StreamQos};
use nistream::engine::{host_sched_core, CollectSink, EngineClock};
use nistream::pool::FramePool;
use nistream::serversim::hostload::HostSendPlatform;
use nistream::serversim::niload::NiWirePlatform;
use nistream::trace::{to_lines, TraceCapture, TraceEvent};
use std::cell::RefCell;

const CAP: usize = 4096;

/// Serialize a capture to its canonical byte form (overflow header plus
/// one line per event) so placement comparison is a plain `assert_eq!`
/// on strings.
fn canon(cap: &TraceCapture) -> String {
    format!("overflow={}\n{}", cap.overflow, to_lines(&cap.events))
}

/// Drive the shared script through a raw `SchedService` bound to any
/// platform; returns the drained capture.
fn run_svc<P: Platform>(cfg: SchedulerConfig, platform: P, drain: impl FnOnce(&mut P) -> TraceCapture) -> TraceCapture {
    let mut svc = SchedService::new(DualHeap::new(16), cfg, platform);
    let streams = script();
    let sids: Vec<_> = streams
        .iter()
        .map(|s| {
            let mut qos = StreamQos::new(s.period, s.loss_num, s.loss_den);
            if !s.droppable {
                qos = qos.send_late();
            }
            svc.open(qos)
        })
        .collect();
    let mut addr = 0x9000_0000u64;
    for (si, s) in streams.iter().enumerate() {
        for (seq, &(len, kind)) in s.frames.iter().enumerate() {
            let desc = FrameDesc {
                stream: sids[si],
                seq: seq as u64,
                len,
                kind,
                enqueued_at: 0,
                addr,
            };
            svc.ingest_at(sids[si], desc, 0);
            addr += u64::from(len);
        }
    }
    {
        let svc = RefCell::new(&mut svc);
        drive(
            || svc.borrow_mut().next_eligible(),
            |t| {
                let mut s = svc.borrow_mut();
                s.platform_mut().set_now(t);
                s.service_once();
            },
            || svc.borrow().has_pending(),
        );
    }
    drain(svc.platform_mut())
}

/// The host engine's service core (virtual clock, real frame pool).
fn trace_host_engine(cfg: SchedulerConfig) -> TraceCapture {
    let pool = FramePool::new(64, 1024);
    let clock = EngineClock::virtual_clock();
    let (sink, _records, _drops) = CollectSink::shared(clock.clone());
    let mut svc = host_sched_core(cfg, clock.clone(), pool.clone(), Box::new(sink));
    svc.platform_mut().set_trace(CAP);

    let streams = script();
    let sids: Vec<_> = streams
        .iter()
        .map(|s| {
            let mut qos = StreamQos::new(s.period, s.loss_num, s.loss_den);
            if !s.droppable {
                qos = qos.send_late();
            }
            svc.open(qos)
        })
        .collect();
    for (si, s) in streams.iter().enumerate() {
        for (seq, &(len, kind)) in s.frames.iter().enumerate() {
            let payload = vec![si as u8; len as usize];
            let slot = pool.store(&payload).expect("pool sized for the script");
            let desc = FrameDesc {
                stream: sids[si],
                seq: seq as u64,
                len,
                kind,
                enqueued_at: 0,
                addr: u64::from(slot),
            };
            svc.ingest_at(sids[si], desc, 0);
        }
    }
    {
        let clock = &clock;
        let svc = RefCell::new(&mut svc);
        drive(
            || svc.borrow_mut().next_eligible(),
            |t| {
                clock.set_ns(t);
                svc.borrow_mut().service_once();
            },
            || svc.borrow().has_pending(),
        );
    }
    svc.platform_mut().drain_trace()
}

/// The DVCM media-scheduler extension (VCM instruction path, NI outbox).
fn trace_ni_extension(cfg: SchedulerConfig) -> TraceCapture {
    let mut ext = MediaSchedExt::with_config(8, cfg);
    ext.enable_trace(CAP);

    let streams = script();
    let sids: Vec<_> = streams
        .iter()
        .map(|s| {
            let reply = ext.on_instruction(
                VcmInstruction::OpenStream(StreamSpec {
                    period: s.period,
                    loss_num: s.loss_num,
                    loss_den: s.loss_den,
                    droppable: s.droppable,
                }),
                0,
            );
            assert_eq!(reply.status, 0, "admission");
            nistream::dwcs::StreamId(reply.payload[0])
        })
        .collect();
    let mut addr = 0x9000_0000u64;
    for (si, s) in streams.iter().enumerate() {
        for &(len, kind) in &s.frames {
            let reply = ext.on_instruction(
                VcmInstruction::EnqueueFrame {
                    stream: sids[si],
                    addr,
                    len,
                    kind,
                },
                0,
            );
            assert_eq!(reply.status, 0, "enqueue");
            addr += u64::from(len);
        }
    }
    {
        let ext = RefCell::new(&mut ext);
        drive(
            || ext.borrow_mut().scheduler_mut().next_eligible(),
            |t| {
                ext.borrow_mut().poll_decision(t);
                while ext.borrow_mut().pop_dispatch().is_some() {}
            },
            || ext.borrow().has_pending(),
        );
    }
    ext.drain_trace()
}

/// The trace must exercise every event class the script can produce, or
/// byte-equality would pin a vacuous stream.
fn assert_trace_nontrivial(cap: &TraceCapture) {
    assert!(!cap.is_empty(), "script produces events");
    assert_eq!(cap.overflow, 0, "ring sized for the script");
    let has = |f: fn(&TraceEvent) -> bool| cap.events.iter().any(f);
    assert!(has(|e| matches!(e, TraceEvent::Admit { .. })), "admits");
    assert!(has(|e| matches!(e, TraceEvent::Decision { .. })), "decisions");
    assert!(
        has(|e| matches!(e, TraceEvent::Dispatch { on_time: true, .. })),
        "on-time dispatches"
    );
    assert!(
        has(|e| matches!(e, TraceEvent::Dispatch { on_time: false, .. })),
        "late dispatches"
    );
    assert!(has(|e| matches!(e, TraceEvent::Drop { .. })), "drops");
    assert!(has(|e| matches!(e, TraceEvent::QueueDepth { .. })), "queue depths");
}

#[test]
fn all_four_placements_emit_byte_identical_traces() {
    let engine = trace_host_engine(base_config());
    let ext = trace_ni_extension(base_config());
    let hostsend = run_svc(
        base_config(),
        HostSendPlatform::new(3, CAP),
        HostSendPlatform::drain_trace,
    );
    let niwire = run_svc(
        base_config(),
        NiWirePlatform::new(3, true, CAP),
        NiWirePlatform::drain_trace,
    );

    assert_trace_nontrivial(&engine);
    let golden = canon(&engine);
    assert_eq!(golden, canon(&ext), "engine vs DVCM extension");
    assert_eq!(golden, canon(&hostsend), "engine vs host-send simulation platform");
    assert_eq!(golden, canon(&niwire), "engine vs NI-wire simulation platform");
}

#[test]
fn cost_models_do_not_leak_into_the_trace() {
    // The two simulation platforms price passes on different hardware
    // models (host CPU vs i960+Ethernet), advancing their clocks by
    // different amounts mid-pass — yet every event is stamped with the
    // pass-start time, so the narration is identical. The cache flag
    // changes i960 pricing only; flipping it must change nothing either.
    let cached = run_svc(
        base_config(),
        NiWirePlatform::new(3, true, CAP),
        NiWirePlatform::drain_trace,
    );
    let uncached = run_svc(
        base_config(),
        NiWirePlatform::new(3, false, CAP),
        NiWirePlatform::drain_trace,
    );
    assert_eq!(canon(&cached), canon(&uncached));
}

#[test]
fn decoupled_dispatch_traces_are_placement_invariant() {
    let engine = trace_host_engine(decoupled_config());
    let ext = trace_ni_extension(decoupled_config());
    assert_trace_nontrivial(&engine);
    assert_eq!(canon(&engine), canon(&ext), "decoupled engine vs DVCM extension");
}
