//! Runtime gate for the `ni-no-alloc` static invariant: after warm-up, a
//! steady-state `SchedService` pass — ingest, decide, drop, dispatch,
//! trace — performs **zero** heap allocations. The static lint proves the
//! property over the call graph; this test proves it over an actual run,
//! so a regression that sneaks past the analysis (e.g. through a trait
//! object or a std call the lint does not model) still fails CI.
//!
//! The counting allocator is gated per-thread: only allocations made by
//! the test thread between `gate_on` and `gate_off` are counted, so the
//! harness's own bookkeeping threads cannot pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use nistream::dwcs::qos::StreamQos;
use nistream::dwcs::repr::LinearScan;
use nistream::dwcs::scheduler::SchedulerConfig;
use nistream::dwcs::svc::{DispatchRecord, Platform, SchedService};
use nistream::dwcs::types::{FrameDesc, FrameKind, StreamId, Time, MILLISECOND};
use nistream::trace::TraceRing;

static GATED_ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static GATE: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` instead of `with`: the allocator runs during TLS
        // teardown too, where accessing a destroyed key would abort.
        if GATE.try_with(Cell::get).unwrap_or(false) {
            GATED_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarding the caller's layout to the system allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from this allocator with the same `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growing Vec reaches here rather than `alloc`; count it the same.
        if GATE.try_with(Cell::get).unwrap_or(false) {
            GATED_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same contract as `GlobalAlloc::realloc`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn gate_on() {
    GATED_ALLOCS.store(0, Ordering::Relaxed);
    GATE.with(|c| c.set(true));
}

fn gate_off() -> u64 {
    GATE.with(|c| c.set(false));
    GATED_ALLOCS.load(Ordering::Relaxed)
}

/// Minimal placement: settable clock, counting sink, NI trace ring.
struct NullPlatform {
    now: Time,
    ring: TraceRing,
    dispatched: u64,
    reclaimed: u64,
}

impl Platform for NullPlatform {
    fn now(&mut self) -> Time {
        self.now
    }
    fn set_now(&mut self, t: Time) {
        self.now = t;
    }
    fn dispatch(&mut self, _rec: &DispatchRecord) {
        self.dispatched += 1;
    }
    fn reclaim(&mut self, _desc: &FrameDesc) {
        self.reclaimed += 1;
    }
    fn tracer(&mut self) -> Option<&mut TraceRing> {
        Some(&mut self.ring)
    }
}

const PERIOD: Time = 10 * MILLISECOND;

fn frame(sid: StreamId, seq: u64) -> FrameDesc {
    FrameDesc::new(sid, seq, 1_000, FrameKind::P)
}

/// One on-time pass: ingest a frame, advance past its deadline window
/// start, service.
fn on_time_pass(svc: &mut SchedService<LinearScan, NullPlatform>, sid: StreamId, seq: u64, t: Time) {
    svc.ingest_at(sid, frame(sid, seq), t);
    svc.platform_mut().set_now(t + MILLISECOND);
    let _ = svc.service_once();
}

/// A burst of `n` frames ingested at once, then serviced far past their
/// deadlines — exercises the drop/reclaim path and its staging buffers.
fn drop_burst(svc: &mut SchedService<LinearScan, NullPlatform>, sid: StreamId, seq0: u64, n: u64, t: Time) -> Time {
    for k in 0..n {
        svc.ingest_at(sid, frame(sid, seq0 + k), t);
    }
    let late = t + 1_000 * MILLISECOND;
    svc.platform_mut().set_now(late);
    while svc.has_pending() {
        let _ = svc.service_once();
    }
    late
}

#[test]
fn steady_state_service_pass_allocates_nothing() {
    let platform = NullPlatform {
        now: 0,
        ring: TraceRing::with_capacity(64),
        dispatched: 0,
        reclaimed: 0,
    };
    let mut svc = SchedService::new(LinearScan::new(8), SchedulerConfig::default(), platform);
    // Loss tolerance 1/2: late heads drop within budget.
    let sid = svc.open(StreamQos::new(PERIOD, 1, 2));

    // Warm-up: reach every buffer's high-water mark — per-stream queue
    // depth 8, the drop staging buffers, and a full (overflowing) trace
    // ring — so steady state only recycles capacity.
    let mut t = 0;
    let mut seq = 0;
    for _ in 0..64 {
        on_time_pass(&mut svc, sid, seq, t);
        seq += 1;
        t += PERIOD;
    }
    t = drop_burst(&mut svc, sid, seq, 8, t);
    seq += 8;
    assert!(svc.platform().ring.overflow() > 0, "warm-up should overflow the ring");
    let warm_reclaimed = svc.platform().reclaimed;
    assert!(warm_reclaimed > 0, "warm-up should exercise the drop path");

    // Steady state, gated: on-time passes plus a smaller drop burst, all
    // through the same service loop the NI placement runs.
    gate_on();
    for _ in 0..200 {
        on_time_pass(&mut svc, sid, seq, t);
        seq += 1;
        t += PERIOD;
    }
    t = drop_burst(&mut svc, sid, seq, 4, t);
    let allocs = gate_off();

    assert_eq!(
        allocs, 0,
        "steady-state service passes allocated {allocs} time(s) — the NI placement must run allocation-free after warm-up"
    );
    let _ = t;
    assert!(svc.platform().dispatched >= 200, "gated phase actually dispatched");
    assert!(
        svc.platform().reclaimed > warm_reclaimed,
        "gated phase actually exercised the drop path"
    );
}
