//! Integration: the full DVCM control path — host handle → I2O message
//! unit → NI runtime → media-scheduler extension — carrying a segmented
//! synthetic MPEG-1 stream.

use nistream::dvcm::instr::{StreamSpec, VcmInstruction};
use nistream::dvcm::{MediaSchedExt, NiRuntime, VcmHandle};
use nistream::dwcs::types::{MILLISECOND, SECOND};
use nistream::dwcs::{FrameKind, StreamId};
use nistream::mpeg1::{EncoderConfig, PictureKind, Segmenter, SyntheticEncoder};

fn rt() -> (NiRuntime, VcmHandle) {
    let mut rt = NiRuntime::new(32);
    rt.registry.load(Box::new(MediaSchedExt::new(8)));
    let h = VcmHandle::new(rt.ext_tid);
    (rt, h)
}

#[test]
fn segmented_mpeg_flows_through_the_instruction_path() {
    let (mut rt, mut host) = rt();

    // Open a 30 fps stream.
    let reply = host
        .call(
            &mut rt,
            VcmInstruction::OpenStream(StreamSpec {
                period: 33 * MILLISECOND,
                loss_num: 2,
                loss_den: 8,
                droppable: true,
            }),
            0,
        )
        .unwrap();
    assert_eq!(reply.status, 0);
    let sid = StreamId(reply.payload[0]);

    // Segment a synthetic file and enqueue every frame by reference.
    let (bytes, _) = SyntheticEncoder::new(EncoderConfig::default()).encode(27);
    let frames = Segmenter::new(&bytes).segment_all().unwrap();
    assert_eq!(frames.len(), 27);
    for f in &frames {
        let kind = match f.kind {
            PictureKind::I => FrameKind::I,
            PictureKind::P => FrameKind::P,
            PictureKind::B => FrameKind::B,
        };
        let r = host
            .call(
                &mut rt,
                VcmInstruction::EnqueueFrame {
                    stream: sid,
                    addr: f.offset as u64,
                    len: f.len,
                    kind,
                },
                0,
            )
            .unwrap();
        assert_eq!(r.status, 0);
    }

    // NI task loop: poll until drained (work-conserving default, so a
    // handful of polls services everything).
    for tick in 0..200u64 {
        let now = tick * 10 * MILLISECOND;
        rt.poll_extensions(now);
    }
    let stats = host.call(&mut rt, VcmInstruction::QueryStats(sid), SECOND).unwrap();
    let sent_on_time = stats.payload[0];
    let dropped = stats.payload[2];
    assert_eq!(sent_on_time + dropped, 27, "every frame accounted for");
    assert_eq!(dropped, 0, "poll cadence keeps pace with 30 fps");

    // Addresses travelled untouched: bytes at the recorded offsets still
    // hold picture start codes.
    for f in &frames {
        assert_eq!(&bytes[f.offset..f.offset + 4], &[0, 0, 1, 0]);
    }
}

#[test]
fn message_unit_backpressure_recovers() {
    let (mut rt, mut host) = rt();
    // Saturate the inbound pool with async issues.
    let mut issued = 0;
    while host.issue(&mut rt, VcmInstruction::Kick).is_ok() {
        issued += 1;
        assert!(issued <= 32, "pool must bound issues");
    }
    assert_eq!(issued, 32);
    // Service + drain, then the path is clear again.
    rt.service_inbound(0, usize::MAX);
    while host.drain_reply(&mut rt).is_some() {}
    assert!(host.issue(&mut rt, VcmInstruction::Kick).is_ok());
}

#[test]
fn stats_roundtrip_matches_extension_state() {
    let (mut rt, mut host) = rt();
    let reply = host
        .call(
            &mut rt,
            VcmInstruction::OpenStream(StreamSpec {
                period: 10 * MILLISECOND,
                loss_num: 1,
                loss_den: 2,
                droppable: true,
            }),
            0,
        )
        .unwrap();
    let sid = StreamId(reply.payload[0]);
    for i in 0..5u64 {
        host.call(
            &mut rt,
            VcmInstruction::EnqueueFrame {
                stream: sid,
                addr: i,
                len: 1_000,
                kind: FrameKind::P,
            },
            0,
        )
        .unwrap();
    }
    for _ in 0..5 {
        host.call(&mut rt, VcmInstruction::Kick, SECOND).unwrap();
    }
    let stats = host.call(&mut rt, VcmInstruction::QueryStats(sid), SECOND).unwrap();
    let sent = stats.payload[0] + stats.payload[1];
    let dropped = stats.payload[2];
    assert_eq!(sent + dropped, 5);
    let bytes_sent = (u64::from(stats.payload[4]) << 32) | u64::from(stats.payload[5]);
    assert_eq!(bytes_sent, u64::from(sent) * 1_000);
}
