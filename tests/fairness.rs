//! DWCS bandwidth sharing under overload.
//!
//! §5: "the DWCS algorithm has the ability to share bandwidth among
//! competing clients in strict proportion to their deadlines and
//! loss-tolerances." Under sustained overload, a stream tolerating x of
//! every y frames lost should keep ≈ (1 − x/y) of its nominal rate while
//! more tolerant streams absorb the shedding.

use nistream::dwcs::types::MILLISECOND;
use nistream::dwcs::{DeadlineAnchor, DualHeap, DwcsScheduler, FrameDesc, FrameKind, SchedulerConfig, StreamQos};

/// Drive an overloaded link over a fixed horizon: every stream produces
/// one frame per `period`, the link serves at most one frame per `slot`,
/// and we stop at the production horizon (throughput shares over *time*,
/// not an unbounded drain).
fn overload_run(tolerances: &[(u32, u32)], period: u64, slot: u64, frames: u64) -> Vec<(u64, u64)> {
    // Arrival-grid anchoring: the classic DWCS fairness regime (see
    // `DeadlineAnchor` docs — the service chain trades this for the
    // figures' persistent-rate-degradation behaviour).
    let cfg = SchedulerConfig {
        anchor: DeadlineAnchor::ArrivalGrid,
        ..SchedulerConfig::default()
    };
    let mut s = DwcsScheduler::with_config(DualHeap::new(tolerances.len()), cfg);
    let sids: Vec<_> = tolerances
        .iter()
        .map(|&(x, y)| s.add_stream(StreamQos::new(period, x, y)))
        .collect();
    let horizon = frames * period;
    let mut next_arrival = 0u64;
    let mut seq = 0u64;
    let mut now = 0u64;
    while now < horizon {
        while next_arrival <= now && seq < frames {
            for &sid in &sids {
                s.enqueue(sid, FrameDesc::new(sid, seq, 1000, FrameKind::P), next_arrival);
            }
            seq += 1;
            next_arrival += period;
        }
        let _ = s.schedule_next(now);
        now += slot;
    }
    sids.iter()
        .map(|&sid| {
            let st = s.stats(sid);
            (st.sent(), st.dropped)
        })
        .collect()
}

#[test]
fn tighter_tolerance_keeps_more_bandwidth() {
    // Three streams at 10 ms periods; the link serves one frame per 6 ms —
    // aggregate demand 3/10 per ms vs capacity 1/6: ~1.8x overload.
    let out = overload_run(&[(1, 8), (4, 8), (7, 8)], 10 * MILLISECOND, 6 * MILLISECOND, 400);
    let sent: Vec<u64> = out.iter().map(|&(s, _)| s).collect();
    assert!(
        sent[0] > sent[1] && sent[1] > sent[2],
        "delivery ordered by tightness: {sent:?}"
    );
    // The tight stream keeps ≥ 7/8 of its frames; the loose one sheds
    // roughly its tolerance.
    assert!(sent[0] as f64 >= 400.0 * 0.85, "tight stream kept {}", sent[0]);
    let loose_kept = sent[2] as f64 / 400.0;
    assert!(
        (0.10..=0.60).contains(&loose_kept),
        "7/8-tolerant stream keeps a small share: {loose_kept:.2}"
    );
}

#[test]
fn drops_track_loss_tolerance_proportionally() {
    let out = overload_run(&[(2, 8), (6, 8)], 10 * MILLISECOND, 8 * MILLISECOND, 300);
    let (sent_a, dropped_a) = out[0];
    let (sent_b, dropped_b) = out[1];
    // Each stream's drop fraction never exceeds its tolerance bound
    // (+ final partial window).
    assert!(dropped_a as f64 <= 300.0 * 2.0 / 8.0 + 2.0, "a dropped {dropped_a}");
    assert!(dropped_b as f64 <= 300.0 * 6.0 / 8.0 + 6.0, "b dropped {dropped_b}");
    // And the tolerant stream absorbs more of the shedding.
    assert!(dropped_b > dropped_a, "{dropped_b} > {dropped_a}");
    assert!(sent_a > sent_b);
}

#[test]
fn equal_tolerances_share_equally() {
    let out = overload_run(&[(2, 8), (2, 8), (2, 8)], 10 * MILLISECOND, 5 * MILLISECOND, 300);
    let sent: Vec<u64> = out.iter().map(|&(s, _)| s).collect();
    let max = *sent.iter().max().unwrap() as f64;
    let min = *sent.iter().min().unwrap() as f64;
    assert!(min / max > 0.93, "near-equal shares: {sent:?}");
}
