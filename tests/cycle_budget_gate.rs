//! Static-vs-dynamic cycle-budget gate.
//!
//! The `ni-cycle-budget` lint derives a *static* worst-case cycle interval
//! for `SchedService::service_once` by abstract interpretation over the
//! `analysis.toml` file set. This gate validates that bound against the
//! *dynamic* model: a metered scheduler run, priced per decision with the
//! same `hwsim::calib` tables the analyzer mirrors.
//!
//! Three properties tie the two models together:
//!
//! 1. **Soundness** — the static worst case dominates every dynamically
//!    metered decision (a WCET bound below an observed cost would be a
//!    bug in the analyzer, the calibration, or an annotation).
//! 2. **Sanity** — the static bound is not uselessly loose: it stays
//!    within a fixed factor of the observed worst decision. The factor is
//!    generous by design — the interval analysis takes every branch and
//!    every annotated loop bound (16 streams, 16 drops) at once, while
//!    the dynamic run services 3 short streams — but it is a hard ceiling
//!    that catches multiplicative blow-ups in the cost walk.
//! 3. **Calibration** — the constants the analyzer mirrors from
//!    `hwsim::calib` actually match, by name, so the two models cannot
//!    silently drift apart.

use nistream::dwcs::types::MILLISECOND;
use nistream::dwcs::{DwcsScheduler, FrameDesc, FrameKind, LinearScan, StreamQos};
use nistream::fixedpt::ops::{MathMode, OpKind, OpMeter};
use nistream::hwsim::calib;
use nistream_analysis::{costmodel, Config};
use std::path::Path;
use std::sync::Arc;

/// Static worst-case report for `SchedService::service_once`, straight
/// from the repo's own `analysis.toml`.
fn static_report() -> (costmodel::RootReport, costmodel::CostModel) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(root.join("analysis.toml")).expect("analysis.toml");
    let cfg = Config::parse(&text).expect("analysis.toml parses");
    let (roots, model) = nistream_analysis::budget_report(root, &cfg).expect("budget report");
    let svc = roots
        .into_iter()
        .find(|r| r.root == "SchedService::service_once")
        .expect("service_once is a hot root");
    (svc, model)
}

/// Run the NI-placement scheduler (fixed-point build, linear-scan repr —
/// what the i960 firmware does) and price each decision with the i960
/// cost tables. Returns per-decision cycle costs.
fn metered_decision_cycles() -> Vec<u64> {
    let meter = Arc::new(OpMeter::new(MathMode::FixedPoint));
    let mut s = DwcsScheduler::new(LinearScan::new(4));
    s.set_meter(Arc::clone(&meter));
    let sids: Vec<_> = (0..3)
        .map(|i| s.add_stream(StreamQos::new((10 + i) * MILLISECOND, 2, 8)))
        .collect();
    for seq in 0..40u64 {
        for &sid in &sids {
            s.enqueue(sid, FrameDesc::new(sid, seq, 1000, FrameKind::P), 0);
        }
    }

    // Fixed-point lowering: compares land in IntMul, divides in Shift,
    // counter updates in IntAlu, data-structure traffic in MemTouch.
    // Price every touch as a miss — the static model does the same.
    let price = |snap: &[u64]| -> u64 {
        calib::NI_DECISION_BASE_CYCLES
            + snap[OpKind::IntAlu.index()]
            + snap[OpKind::IntMul.index()] * calib::FIXED_RATIO_CYCLES
            + snap[OpKind::Shift.index()] * calib::FIXED_RATIO_CYCLES
            + snap[OpKind::FloatAlu.index()] * calib::SOFT_FP_RATIO_CYCLES
            + snap[OpKind::FloatDiv.index()] * calib::SOFT_FP_RATIO_CYCLES
            + snap[OpKind::MemTouch.index()] * calib::TOUCH_MISS_CYCLES
    };

    let mut out = Vec::new();
    let mut prev = meter.snapshot();
    let mut t = 0;
    while s.has_pending() {
        let _ = s.schedule_next(t);
        t += MILLISECOND;
        let now = meter.snapshot();
        let delta: Vec<u64> = now.iter().zip(prev.iter()).map(|(a, b)| a - b).collect();
        prev = now;
        out.push(price(&delta));
    }
    assert!(out.len() >= 120, "3 streams x 40 frames of decisions");
    out
}

#[test]
fn static_bound_dominates_every_metered_decision() {
    let (svc, model) = static_report();
    assert!(!svc.cycles.is_unbounded(), "service_once must have a static bound");
    assert!(
        svc.cycles.hi <= model.budget_cycles,
        "static worst case {} exceeds the configured budget {}",
        svc.cycles.hi,
        model.budget_cycles
    );

    let decisions = metered_decision_cycles();
    let worst = *decisions.iter().max().expect("at least one decision");
    for (i, &d) in decisions.iter().enumerate() {
        assert!(
            d <= svc.cycles.hi,
            "decision {i} cost {d} cycles, above the static worst case {}",
            svc.cycles.hi
        );
    }

    // The static ceiling is pessimistic, not absurd: every annotated loop
    // bound (16-stream scans, 16 drops per decision) multiplied together
    // against a 3-stream run justifies a wide but *fixed* gap.
    assert!(
        svc.cycles.hi <= worst.saturating_mul(1024),
        "static bound {} is more than 1024x the observed worst decision {worst}",
        svc.cycles.hi
    );
    // And the best case can never undercut the decision baseline.
    assert!(svc.cycles.lo >= calib::NI_DECISION_BASE_CYCLES);
}

#[test]
fn analyzer_mirror_constants_match_hwsim_calibration() {
    let lookup = |name: &str| -> u64 {
        calib::TABLE
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("{name} missing from hwsim::calib::TABLE"))
            .1
    };
    assert_eq!(costmodel::I960_HZ, lookup("I960_HZ"));
    assert_eq!(costmodel::NI_DECISION_BASE_CYCLES, lookup("NI_DECISION_BASE_CYCLES"));
    assert_eq!(costmodel::FIXED_RATIO_CYCLES, lookup("FIXED_RATIO_CYCLES"));
    assert_eq!(costmodel::SOFT_FP_RATIO_CYCLES, lookup("SOFT_FP_RATIO_CYCLES"));
    assert_eq!(costmodel::TOUCH_HIT_CYCLES, lookup("TOUCH_HIT_CYCLES"));
    assert_eq!(costmodel::TOUCH_MISS_CYCLES, lookup("TOUCH_MISS_CYCLES"));
}
