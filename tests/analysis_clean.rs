//! Repo-wide self-test: the checked-in tree satisfies its own static
//! invariants (`analysis.toml`). This is the same pass CI runs via
//! `cargo run -p nistream-analysis -- check`; having it as a test means
//! `cargo test` alone catches a regression.

use std::path::Path;

#[test]
fn repository_satisfies_its_static_invariants() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = nistream_analysis::check_root(root).expect("analysis.toml is well-formed");
    assert!(
        findings.is_empty(),
        "static-analysis violations:\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
