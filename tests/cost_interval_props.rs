//! Properties of the WCET cycle-interval domain (`nistream-analysis`).
//!
//! The cost analyzer composes `CycleInterval`s with saturating `add` /
//! `scale` and the `join` hull. Soundness of the whole analysis rests on
//! three algebraic facts checked here over random intervals:
//!
//! * no composition ever panics or wraps — overflow saturates toward
//!   `u64::MAX`, which the domain reads as "unbounded";
//! * `join` is a monotone upper bound (widening never shrinks either
//!   argument's range), commutative and idempotent;
//! * `add` and `scale` are monotone in both arguments, so replacing any
//!   sub-cost with a larger interval can only grow a summary — the
//!   property that makes bottom-up summarization with opaque fallbacks
//!   conservative.

use nistream_analysis::costmodel::CycleInterval;
use proptest::prelude::*;

fn iv(lo: u64, hi: u64) -> CycleInterval {
    CycleInterval::new(lo.min(hi), lo.max(hi))
}

/// `a` covers at least everything `b` covers.
fn contains(a: CycleInterval, b: CycleInterval) -> bool {
    a.lo <= b.lo && a.hi >= b.hi
}

proptest! {
    #[test]
    fn add_and_scale_never_wrap(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX, c in 0u64..=u64::MAX, d in 0u64..=u64::MAX) {
        // Any combination — including u64::MAX operands — must saturate,
        // not panic or wrap below the operands.
        let x = iv(a, b);
        let y = iv(c, d);
        let s = x.add(y);
        prop_assert!(s.lo >= x.lo && s.lo >= y.lo);
        prop_assert!(s.hi >= x.hi && s.hi >= y.hi);
        let p = x.scale(y);
        prop_assert!(p.lo <= p.hi);
        if x.is_unbounded() && y.hi > 0 {
            prop_assert!(p.is_unbounded(), "unbounded absorbs through scale");
        }
        if x.is_unbounded() || y.is_unbounded() {
            prop_assert!(s.is_unbounded(), "unbounded absorbs through add");
        }
    }

    #[test]
    fn join_is_a_commutative_idempotent_upper_bound(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX, c in 0u64..=u64::MAX, d in 0u64..=u64::MAX) {
        let x = iv(a, b);
        let y = iv(c, d);
        let j = x.join(y);
        prop_assert!(contains(j, x), "join covers lhs");
        prop_assert!(contains(j, y), "join covers rhs");
        prop_assert_eq!(y.join(x), j, "commutative");
        prop_assert_eq!(j.join(x), j, "idempotent on covered args");
        prop_assert_eq!(x.join(x), x);
    }

    #[test]
    fn add_and_scale_are_monotone(
        a in 0u64..1 << 40, b in 0u64..1 << 40,
        c in 0u64..1 << 40, d in 0u64..1 << 40,
        wider in 0u64..1 << 40,
    ) {
        let x = iv(a, b);
        let y = iv(c, d);
        // Widen x on both ends; every composition must only grow.
        let xw = CycleInterval::new(x.lo.saturating_sub(wider), x.hi.saturating_add(wider));
        prop_assert!(contains(xw.add(y), x.add(y)), "add monotone in lhs");
        prop_assert!(contains(y.add(xw), y.add(x)), "add monotone in rhs");
        prop_assert!(contains(xw.scale(y), x.scale(y)), "scale monotone in lhs");
        prop_assert!(contains(y.scale(xw), y.scale(x)), "scale monotone in rhs");
        prop_assert!(contains(xw.join(y), x.join(y)), "join monotone");
    }

    #[test]
    fn exact_intervals_compose_like_scalars(n in 0u64..1 << 30, m in 0u64..1 << 30, k in 1u64..1 << 3) {
        let s = CycleInterval::exact(n).add(CycleInterval::exact(m));
        prop_assert_eq!((s.lo, s.hi), (n + m, n + m));
        let p = CycleInterval::exact(n).scale(CycleInterval::exact(k));
        prop_assert_eq!((p.lo, p.hi), (n * k, n * k));
        prop_assert!(!s.is_unbounded() && !p.is_unbounded());
    }
}
