//! Properties of the fixed-point substrate: `Frac` ordering agrees with
//! exact rational comparison, arithmetic stays ordered, and `Q16` tracks
//! real arithmetic within quantization error.

use nistream::fixedpt::{Frac, Q16};
use proptest::prelude::*;

proptest! {
    #[test]
    fn frac_ordering_matches_rationals(a in 0u32..10_000, b in 1u32..10_000, c in 0u32..10_000, d in 1u32..10_000) {
        let lhs = Frac::new(a, b);
        let rhs = Frac::new(c, d);
        let exact = (u64::from(a) * u64::from(d)).cmp(&(u64::from(c) * u64::from(b)));
        prop_assert_eq!(lhs.cmp(&rhs), exact);
    }

    #[test]
    fn frac_add_is_exact_for_small_operands(a in 0u32..1_000, b in 1u32..1_000, c in 0u32..1_000, d in 1u32..1_000) {
        let sum = Frac::new(a, b).add(Frac::new(c, d));
        // a/b + c/d = (ad + cb) / bd, exactly representable here.
        let expect = Frac::new(a * d + c * b, b * d);
        prop_assert_eq!(sum.cmp(&expect), std::cmp::Ordering::Equal);
    }

    #[test]
    fn frac_saturating_sub_never_negative(a in 0u32..1_000, b in 1u32..1_000, c in 0u32..1_000, d in 1u32..1_000) {
        let diff = Frac::new(a, b).saturating_sub(Frac::new(c, d));
        prop_assert!(diff >= Frac::ZERO);
        if Frac::new(a, b) <= Frac::new(c, d) {
            prop_assert!(diff.is_zero());
        }
    }

    #[test]
    fn frac_half_halves(a in 0u32..30_000, b in 1u32..30_000) {
        // Exact while (2b)^2 fits u32 components; beyond that `add`
        // downscales by shifting (documented lossy regime).
        let v = Frac::new(a, b);
        let h = v.half();
        let twice = h.add(h);
        prop_assert_eq!(twice.cmp(&v), std::cmp::Ordering::Equal);
    }

    #[test]
    fn q16_tracks_f64_within_quantum(x in -30_000i32..30_000, y in -30_000i32..30_000) {
        let a = Q16::from_int(x);
        let b = Q16::from_int(y);
        prop_assert_eq!((a + b).trunc(), i64::from(x) + i64::from(y));
        prop_assert_eq!((a - b).trunc(), i64::from(x) - i64::from(y));
        // Ratio round trip: (x/y)*y ≈ x within 1 integer step.
        if y != 0 {
            let q = Q16::from_ratio(i64::from(x), i64::from(y));
            let back = (q * b).round();
            prop_assert!((back - i64::from(x)).abs() <= 1, "{x}/{y}: got {back}");
        }
    }

    #[test]
    fn q16_shift_is_power_of_two_scaling(x in -1_000i32..1_000, k in 0u32..8) {
        let v = Q16::from_int(x);
        prop_assert_eq!(v.shl(k).trunc(), i64::from(x) << k);
        let down = Q16::from_int(x << k).shr(k);
        prop_assert_eq!(down.trunc(), i64::from(x));
    }
}
