//! Explore Figure 3's frame-transfer paths across frame sizes: where does
//! each path win, and how do the bottlenecks shift?
//!
//! Run: `cargo run --release --example path_explorer`

use nistream::serversim::paths::{self, PathConfig};

fn main() {
    println!("Frame transfer latency by path and frame size (ms/frame)\n");
    println!(
        "{:>10} | {:>12} | {:>14} | {:>10} | {:>10}",
        "bytes", "A (UFS)", "A (VxWorks fs)", "C (NI disk)", "B (peer NI)"
    );
    println!("{}", "-".repeat(70));
    for bytes in [256u64, 1_000, 4_000, 16_000, 64_000, 256_000] {
        let cfg = PathConfig {
            frame_bytes: bytes,
            transfers: 300,
            ..PathConfig::default()
        };
        let a1 = paths::path_a_ufs(&cfg).total_ms;
        let a2 = paths::path_a_vxfs(&cfg).total_ms;
        let c = paths::path_c(&cfg).total_ms;
        let b = paths::path_b(&cfg).total_ms;
        println!("{bytes:>10} | {a1:>12.3} | {a2:>14.3} | {c:>10.3} | {b:>10.3}");
    }

    println!("\nPer-component view at the paper's 1000-byte point:");
    let cfg = PathConfig::default();
    for (name, p) in [
        ("Path A (UFS)", paths::path_a_ufs(&cfg)),
        ("Path A (VxWorks fs)", paths::path_a_vxfs(&cfg)),
        ("Path C", paths::path_c(&cfg)),
        ("Path B", paths::path_b(&cfg)),
    ] {
        println!(
            "  {name:<20} disk {:>6.2}  host {:>5.2}  pci {:>6.3}  net {:>5.2}  = {:>6.3} ms",
            p.disk_ms, p.host_ms, p.pci_ms, p.net_ms, p.total_ms
        );
    }

    let t5 = paths::table5();
    println!(
        "\nPCI substrate: bulk DMA {:.2} MB/s, PIO read {:.1} us, PIO write {:.1} us",
        t5.file_dma_mbps, t5.pio_read_us, t5.pio_write_us
    );
    println!("\nTakeaway: peer-to-peer PCI (Path B) adds only ~15 us over the NI-local");
    println!("path while freeing the scheduler NI's disk slots — the paper's scalable");
    println!("configuration (Experiment III).");
}
