//! The paper's headline comparison, condensed: host-based vs NI-based
//! DWCS under web-server load (30 s simulations of the Figure 6-10
//! experiments).
//!
//! Run: `cargo run --release --example loaded_server`

use nistream::serversim::hostload::{self, HostLoadConfig};
use nistream::serversim::niload::{self, NiLoadConfig};
use nistream::simkit::SimDuration;
use nistream::workload::mpegclient::ClientPlan;
use nistream::workload::profile::LoadProfile;

fn main() {
    let run = 30u64;
    let base = || HostLoadConfig {
        run: SimDuration::from_secs(run),
        frames_per_stream: (run * 30) as usize,
        plan: ClientPlan::two_streams(run),
        ..HostLoadConfig::default()
    };

    println!("=== host-based DWCS (two 260 kb/s streams) ===");
    for (label, target) in [("no load", 0.0), ("moderate load", 0.72), ("heavy load", 0.94)] {
        let mut cfg = base();
        if target > 0.0 {
            let rate = hostload::web_rate_for(target, &cfg);
            cfg.web = LoadProfile::experiment(5, 2, run, rate);
        }
        let r = hostload::run(cfg);
        let bw: f64 = r
            .streams
            .iter()
            .filter_map(|s| s.bandwidth.settling_value(0.5))
            .sum::<f64>()
            / r.streams.len() as f64;
        let drops: u64 = r.streams.iter().map(|s| s.dropped).sum();
        let viol: u64 = r.streams.iter().map(|s| s.violations).sum();
        println!(
            "  {label:<14} cpu {:>5.1}% (peak {:>5.1}%)  per-stream bw {:>8.0} bps  drops {:>3}  violations {:>3}",
            r.avg_util, r.peak_util, bw, drops, viol
        );
    }

    println!("\n=== NI-based DWCS (same streams, scheduler on the i960 model) ===");
    for (label, target) in [("no host load", 0.0), ("heavy host load", 0.94)] {
        let mut cfg = NiLoadConfig {
            run: SimDuration::from_secs(run),
            frames_per_stream: (run * 30) as usize,
            plan: ClientPlan::two_streams(run),
            ..NiLoadConfig::default()
        };
        if target > 0.0 {
            let host_cfg = base();
            let rate = hostload::web_rate_for(target, &host_cfg);
            cfg.host_web = LoadProfile::experiment(5, 2, run, rate);
        }
        let r = niload::run(cfg);
        let bw: f64 = r
            .streams
            .iter()
            .filter_map(|s| s.bandwidth.settling_value(0.5))
            .sum::<f64>()
            / r.streams.len() as f64;
        let drops: u64 = r.streams.iter().map(|s| s.dropped).sum();
        let host = r
            .host
            .as_ref()
            .map(|h| format!("host cpu {:>5.1}%", h.avg_util))
            .unwrap_or_else(|| "host idle".into());
        println!(
            "  {label:<16} {host}  per-stream bw {:>8.0} bps  drops {drops}  NI decision {:.1} us",
            bw, r.mean_decision_us
        );
    }
    println!("\nThe NI rows do not move: \"packet schedulers running directly on NIs are");
    println!("immune to host-CPU loading\" — the paper's central claim.");
}
