//! QoS mixing on the real engine: streams with different periods and
//! loss-tolerances sharing one scheduler, with DWCS admission control
//! deciding who gets in.
//!
//! Run: `cargo run --release --example qos_mixer`

use nistream::core::engine::{MediaServer, SinkKind};
use nistream::core::qos::StreamQos;
use nistream::dwcs::admission;
use nistream::dwcs::types::MILLISECOND;
use std::time::Duration;

fn main() {
    // Candidate streams: (label, period ms, x, y).
    let candidates = [
        ("hd-video", 8u64, 1u32, 8u32),
        ("sd-video", 16, 2, 8),
        ("audio", 5, 0, 1),
        ("preview-a", 4, 4, 8),
        ("preview-b", 4, 4, 8),
        ("telemetry", 2, 6, 8),
    ];

    // Admission control against a 1 ms service slot (frames are small and
    // the sink is fast; the slot models the dispatch path budget).
    let service = MILLISECOND;
    let mut admitted: Vec<StreamQos> = Vec::new();
    println!("admission control (service slot = 1 ms):");
    for (name, period_ms, x, y) in candidates {
        let qos = StreamQos::new(period_ms * MILLISECOND, x, y);
        if admission::admit(&admitted, qos, service) {
            admitted.push(qos);
            println!(
                "  + {name:<10} T={period_ms:>2} ms tolerance {x}/{y}  (U now {:.2})",
                nistream::core::report::utilization_f64(&admitted, service)
            );
        } else {
            println!("  - {name:<10} REJECTED (would exceed capacity)");
        }
    }

    // Run the admitted set for half a second on the real engine.
    let server = MediaServer::builder()
        .pool(1024, 4096)
        .sink(SinkKind::Collect)
        .start()
        .expect("server");
    let mut handles = Vec::new();
    for qos in &admitted {
        handles.push(server.open_stream(*qos).expect("open"));
    }
    // Feed each stream enough frames for ~500 ms of playout.
    for (h, qos) in handles.iter_mut().zip(&admitted) {
        let frames = (500 * MILLISECOND / qos.period) as usize + 1;
        for _ in 0..frames {
            h.send(&[0u8; 256]).expect("queue");
        }
    }
    std::thread::sleep(Duration::from_millis(700));

    println!("\nservice report:");
    for (h, (name, ..)) in handles.iter().zip(candidates.iter().filter(|_| true)) {
        if let Ok(s) = server.stats(h.id()) {
            println!(
                "  {name:<10} sent {:>3} on-time {:>3} late {:>2} dropped {:>2} violations {:>2}",
                s.sent(),
                s.sent_on_time,
                s.sent_late,
                s.dropped,
                s.violations
            );
        }
    }
    server.shutdown();
    println!("\nEvery admitted stream met its window constraints — the DWCS feasibility");
    println!("test is exactly the paper's pre-negotiated degradation bound.");
}
