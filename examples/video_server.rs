//! A miniature video server: synthesize an MPEG-1 file, segment it with
//! the rebuilt segmentation program, and stream the frames over UDP to a
//! local client at the stream's native rate — the paper's pipeline end to
//! end on the real engine.
//!
//! Run: `cargo run --release --example video_server`

use nistream::core::engine::{MediaServer, SinkKind};
use nistream::core::qos::StreamQos;
use nistream::dwcs::FrameKind;
use nistream::mpeg1::{EncoderConfig, PictureKind, Segmenter, SyntheticEncoder};
use std::net::UdpSocket;
use std::time::{Duration, Instant};

fn main() {
    // 1. "Encode" 3 seconds of 1.5 Mb/s MPEG-1 video.
    let cfg = EncoderConfig {
        fps: 30.0,
        ..EncoderConfig::default()
    };
    let fps = cfg.fps;
    let (bitstream, _) = SyntheticEncoder::new(cfg).encode(90);
    println!("synthesized {} bytes of MPEG-1 elementary stream", bitstream.len());

    // 2. Segment it into I/P/B frames (the paper's producer step).
    let frames = Segmenter::new(&bitstream).segment_all().expect("valid stream");
    println!(
        "segmented {} pictures (I:{} P:{} B:{})",
        frames.len(),
        frames.iter().filter(|f| f.kind == PictureKind::I).count(),
        frames.iter().filter(|f| f.kind == PictureKind::P).count(),
        frames.iter().filter(|f| f.kind == PictureKind::B).count()
    );

    // 3. A UDP client stands in for the remote MPEG player.
    let client = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    client.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let addr = client.local_addr().unwrap();

    // 4. Stream through the DWCS engine at 30 fps.
    let period = (1e9 / fps) as u64;
    let server = MediaServer::builder()
        .pool(512, 64 * 1024)
        .sink(SinkKind::Udp(addr))
        .start()
        .expect("server");
    let mut stream = server.open_stream(StreamQos::new(period, 2, 8)).expect("open");

    let receiver = std::thread::spawn(move || {
        let mut buf = vec![0u8; 65_536];
        let mut got = 0usize;
        let mut bytes = 0usize;
        let start = Instant::now();
        let mut last = start;
        while let Ok((n, _)) = client.recv_from(&mut buf) {
            got += 1;
            bytes += n;
            last = Instant::now();
        }
        // Measure to the last datagram, not the read-timeout tail.
        (got, bytes, last.duration_since(start))
    });

    for f in &frames {
        let payload = &bitstream[f.offset..f.offset + f.len as usize];
        let kind = match f.kind {
            PictureKind::I => FrameKind::I,
            PictureKind::P => FrameKind::P,
            PictureKind::B => FrameKind::B,
        };
        stream.send_kind(payload, kind).expect("queue frame");
    }

    // 90 frames at 30 fps ≈ 3 s of paced playout.
    std::thread::sleep(Duration::from_millis(3_500));
    let stats = server.stats(stream.id()).expect("stats");
    server.shutdown();
    let (got, bytes, took) = receiver.join().unwrap();

    println!("\nclient received {got} datagrams, {bytes} bytes in {took:?}");
    println!(
        "measured delivery rate: {:.0} kb/s (stream nominal ≈ 1500 kb/s)",
        bytes as f64 * 8.0 / took.as_secs_f64() / 1e3
    );
    println!(
        "server stats: on-time {} late {} dropped {} violations {}",
        stats.sent_on_time, stats.sent_late, stats.dropped, stats.violations
    );
}
