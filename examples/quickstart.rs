//! Quickstart: open a media server, stream two QoS-managed flows, read
//! the service statistics.
//!
//! Run: `cargo run --release --example quickstart`

use nistream::core::engine::{MediaServer, SinkKind};
use nistream::core::qos::StreamQos;
use nistream::dwcs::types::MILLISECOND;
use std::time::Duration;

fn main() {
    // A server whose scheduler thread paces dispatches at stream rate and
    // records every delivered frame.
    let server = MediaServer::builder()
        .pool(256, 16 * 1024)
        .sink(SinkKind::Collect)
        .start()
        .expect("spawn scheduler thread");

    // Stream A: 100 fps equivalent (10 ms period), tolerates 2 losses per
    // window of 8. Stream B: half the rate, lossless (late frames must
    // still be delivered).
    let mut a = server
        .open_stream(StreamQos::new(10 * MILLISECOND, 2, 8))
        .expect("open stream A");
    let mut b = server
        .open_stream(StreamQos::new(20 * MILLISECOND, 0, 1).send_late())
        .expect("open stream B");

    for seq in 0..50u32 {
        a.send(&seq.to_le_bytes()).expect("queue frame on A");
        if seq % 2 == 0 {
            b.send(&[0xB; 512]).expect("queue frame on B");
        }
    }

    // Let the paced scheduler drain both flows (50 × 10 ms ≈ 0.5 s).
    std::thread::sleep(Duration::from_millis(800));

    for (name, handle) in [("A", &a), ("B", &b)] {
        let stats = server.stats(handle.id()).expect("stats");
        println!(
            "stream {name}: enqueued {:>3}  on-time {:>3}  late {:>2}  dropped {:>2}  violations {:>2}  mean queue delay {:>5.1} ms",
            stats.enqueued,
            stats.sent_on_time,
            stats.sent_late,
            stats.dropped,
            stats.violations,
            stats.mean_queue_delay() as f64 / 1e6,
        );
    }

    let recs = server.collected();
    println!("\ndelivered {} frames total; first 5:", recs.len());
    for r in recs.iter().take(5) {
        println!(
            "  t={:>6.1} ms  stream {:?} seq {} ({} bytes, on_time={})",
            r.at_ns as f64 / 1e6,
            r.stream,
            r.seq,
            r.len,
            r.on_time
        );
    }
    server.shutdown();
}
