//! Capacity planning for the paper's Figure 1 cluster: how many streams a
//! node sustains as the scheduler/producer NI split varies, and what a
//! 16-node cluster totals.
//!
//! Run: `cargo run --release --example cluster_capacity`

use nistream::serversim::cluster::{node_capacity, sweep_ni_split, Cluster, NodeConfig};

fn main() {
    let node = NodeConfig::default();
    let cap = node_capacity(&node);
    println!("per-NI stream capacity (260 kb/s MPEG-1 streams, 2/8 tolerance):");
    println!(
        "  scheduler NI : {:>4} streams (decision+dispatch+wire budget)",
        cap.streams_per_scheduler_ni
    );
    println!(
        "  producer NI  : {:>4} streams (two SCSI disks at ~4.2 ms/frame)",
        cap.streams_per_producer_ni
    );
    println!(
        "  PCI bus      : {:>4} streams (peer-to-peer DMA budget)",
        cap.pci_stream_limit
    );

    println!("\nNI split sweep for a 6-slot node (scheduler NIs vs capacity):");
    for (sched, streams) in sweep_ni_split(6, &node) {
        let bar = "#".repeat((streams / 2) as usize);
        println!(
            "  {sched} scheduler / {} producer: {streams:>4} streams {bar}",
            6 - sched
        );
    }

    let cluster = Cluster::paper_testbed();
    println!(
        "\n16-node cluster total: {} concurrent streams",
        cluster.total_streams()
    );
    println!(
        "per-NI admission check at that operating point: {}",
        if cluster.admissible_per_ni(node_capacity(&cluster.node).node_streams) {
            "feasible"
        } else {
            "infeasible"
        }
    );
    println!("\n\"Given the limited I/O slot real-estate, careful balance between NIs");
    println!("dedicated for scheduling and stream sourcing is required.\" — §6");
}
