//! Boot the full embedded NI — VxWorks-like kernel, I2O messaging, DVCM
//! media-scheduler task — and stream a segmented MPEG file through it,
//! printing the node's task-level timeline.
//!
//! Run: `cargo run --release --example ni_emulator`

use nistream::dvcm::instr::{StreamSpec, VcmInstruction};
use nistream::dvcm::VcmHandle;
use nistream::dwcs::types::MILLISECOND;
use nistream::dwcs::StreamId;
use nistream::mpeg1::{EncoderConfig, Segmenter, SyntheticEncoder};
use nistream::serversim::ninode::{NiNode, NiNodeConfig};

fn main() {
    // Boot: kernel up, watchdog pacing the DVCM service task at 1 kHz.
    let mut node = NiNode::boot(NiNodeConfig {
        // Two background housekeeping tasks at lower priority than the
        // scheduler task — the NI's "few system tasks".
        interference: vec![(200, 66_000, 10), (201, 33_000, 20)],
        ..NiNodeConfig::default()
    });
    println!("NI node booted: wind kernel at 66 MHz, 1 kHz ticks, DVCM task spawned");

    // Segment 2 seconds of MPEG-1 and open a 30 fps stream on the card.
    let (file, _) = SyntheticEncoder::new(EncoderConfig::default()).encode(60);
    let frames = Segmenter::new(&file).segment_all().expect("valid stream");
    println!("segmented {} frames from a {}-byte file", frames.len(), file.len());

    let ext_tid = node.runtime.borrow().ext_tid;
    let mut host = VcmHandle::new(ext_tid);
    let sid = {
        let mut rt = node.runtime.borrow_mut();
        let r = host
            .call(
                &mut rt,
                VcmInstruction::OpenStream(StreamSpec {
                    period: 33 * MILLISECOND,
                    loss_num: 2,
                    loss_den: 8,
                    droppable: true,
                }),
                0,
            )
            .expect("open");
        let sid = StreamId(r.payload[0]);
        for f in &frames {
            host.call(
                &mut rt,
                VcmInstruction::EnqueueFrame {
                    stream: sid,
                    addr: f.offset as u64,
                    len: f.len,
                    kind: nistream::dwcs::FrameKind::P,
                },
                0,
            )
            .expect("enqueue");
        }
        sid
    };

    // Run the node for 2.5 simulated seconds.
    node.run_until(2_500 * MILLISECOND);

    let stats = {
        let mut rt = node.runtime.borrow_mut();
        host.call(&mut rt, VcmInstruction::QueryStats(sid), node.now())
            .expect("stats")
    };
    println!("\nafter {:.2} s of NI time:", node.now() as f64 / 1e9);
    println!(
        "  frames on time: {}   late: {}   dropped: {}   violations: {}",
        stats.payload[0], stats.payload[1], stats.payload[2], stats.payload[3]
    );
    println!(
        "  kernel: {} ticks, {} context switches, {} cycles executed",
        node.kernel.tick(),
        node.kernel.context_switches(),
        node.kernel.total_cycles()
    );
    println!(
        "  DVCM task consumed {} cycles ({:.2} ms of 66 MHz CPU)",
        node.kernel.task_cycles(node.dvcm_task),
        node.kernel.task_cycles(node.dvcm_task) as f64 / 66_000.0
    );
    let service_events = node.dispatches.borrow().len();
    println!("  service-task activations that dispatched work: {service_events}");
    println!("\nthe scheduler task shares the card with housekeeping tasks yet pays");
    println!("only kernel-tick quantization — the \"few system tasks\" argument of §4.2.3");
}
